// Columnar batches for the vectorized execution path (docs/VECTORIZATION.md).
//
// A Batch is a fixed window of rows in columnar layout: numeric columns are
// unboxed into flat int64/double vectors with a validity bitmap, everything
// else stays as boxed Values in a "generic" column. Operators narrow a batch
// with a selection vector instead of copying survivors, so a filter costs one
// index append per kept row.
//
// Header-only on purpose: the storage and aggregates layers consume batches
// (Table::ReadBatch feeds them, AggregateFunction::AccumulateBatch folds
// them) without linking against the exec library.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "types/schema.h"

namespace aggify {

/// Rows per scan batch before page alignment. Matches the default morsel
/// size (EngineOptions::execution.morsel_rows): the page-aligned morsels of
/// the parallel path double as the batch unit, so serial and parallel
/// execution chunk the table identically.
inline constexpr int64_t kDefaultBatchRows = 2048;

/// \brief Validity bitmap: bit i set = row i holds a (non-NULL) value.
class NullBitmap {
 public:
  void Resize(int64_t n) {
    size_ = n;
    words_.assign(static_cast<size_t>((n + 63) / 64), 0);
  }
  int64_t size() const { return size_; }
  void SetValid(int64_t i) {
    words_[static_cast<size_t>(i >> 6)] |= uint64_t{1} << (i & 63);
  }
  bool IsValid(int64_t i) const {
    return (words_[static_cast<size_t>(i >> 6)] >> (i & 63)) & 1;
  }
  /// Non-NULL count over the whole bitmap.
  int64_t CountValid() const {
    int64_t n = 0;
    for (uint64_t w : words_) {
      while (w != 0) {  // Kernighan popcount; tail bits are never set
        w &= w - 1;
        ++n;
      }
    }
    return n;
  }

 private:
  std::vector<uint64_t> words_;
  int64_t size_ = 0;
};

/// \brief One column of a batch. The tag is chosen from the actual values:
/// all-int (or all-NULL) unboxes to kInt64, all-double to kDouble, anything
/// mixed or non-numeric stays boxed as kGeneric — which preserves exact
/// row-at-a-time semantics (e.g. the sum_is_int tracking of mixed numeric
/// columns) by routing through the per-row fallbacks.
class ColumnVector {
 public:
  enum class Tag : uint8_t { kInt64, kDouble, kGeneric };

  Tag tag() const { return tag_; }
  int64_t size() const { return size_; }
  const std::vector<int64_t>& i64() const { return i64_; }
  const std::vector<double>& f64() const { return f64_; }
  const std::vector<Value>& generic() const { return generic_; }
  const NullBitmap& validity() const { return validity_; }

  bool IsNull(int64_t i) const {
    return tag_ == Tag::kGeneric ? generic_[static_cast<size_t>(i)].is_null()
                                 : !validity_.IsValid(i);
  }

  /// Re-boxes row i (group keys, row-at-a-time fallbacks).
  Value GetValue(int64_t i) const {
    switch (tag_) {
      case Tag::kInt64:
        return validity_.IsValid(i) ? Value::Int(i64_[static_cast<size_t>(i)])
                                    : Value::Null();
      case Tag::kDouble:
        return validity_.IsValid(i) ? Value::Double(f64_[static_cast<size_t>(i)])
                                    : Value::Null();
      case Tag::kGeneric:
        return generic_[static_cast<size_t>(i)];
    }
    return Value::Null();
  }

  /// Builds a column from an accessor `get(i) -> const Value&` over n rows.
  template <typename GetFn>
  static ColumnVector Build(int64_t n, GetFn get) {
    bool has_int = false, has_double = false, has_other = false;
    for (int64_t i = 0; i < n; ++i) {
      const Value& v = get(i);
      if (v.is_null()) continue;
      if (v.is_int()) {
        has_int = true;
      } else if (v.is_double()) {
        has_double = true;
      } else {
        has_other = true;
      }
    }
    ColumnVector col;
    col.size_ = n;
    if (has_other || (has_int && has_double)) {
      col.tag_ = Tag::kGeneric;
      col.generic_.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) col.generic_.push_back(get(i));
      return col;
    }
    col.tag_ = has_double ? Tag::kDouble : Tag::kInt64;  // all-NULL -> kInt64
    col.validity_.Resize(n);
    if (col.tag_ == Tag::kDouble) {
      col.f64_.resize(static_cast<size_t>(n), 0.0);
      for (int64_t i = 0; i < n; ++i) {
        const Value& v = get(i);
        if (v.is_null()) continue;
        col.f64_[static_cast<size_t>(i)] = v.double_value();
        col.validity_.SetValid(i);
      }
    } else {
      col.i64_.resize(static_cast<size_t>(n), 0);
      for (int64_t i = 0; i < n; ++i) {
        const Value& v = get(i);
        if (v.is_null()) continue;
        col.i64_[static_cast<size_t>(i)] = v.int_value();
        col.validity_.SetValid(i);
      }
    }
    return col;
  }

  /// Column `col` of `n` consecutive rows.
  static ColumnVector FromRows(const Row* rows, int64_t n, size_t col) {
    return Build(n, [rows, col](int64_t i) -> const Value& {
      return rows[static_cast<size_t>(i)][col];
    });
  }

  /// A column from a flat value list (tests, adapters).
  static ColumnVector FromValues(const std::vector<Value>& values) {
    return Build(static_cast<int64_t>(values.size()),
                 [&values](int64_t i) -> const Value& {
                   return values[static_cast<size_t>(i)];
                 });
  }

  /// An all-NULL placeholder of `n` rows — what a pruned scan column becomes
  /// (docs/VECTORIZATION.md). The planner guarantees no expression in the
  /// pipeline references it, so only the positional accessors (GetValue,
  /// IsNull) are ever called; no value storage is allocated.
  static ColumnVector NullColumn(int64_t n) {
    ColumnVector col;
    col.tag_ = Tag::kInt64;
    col.size_ = n;
    col.validity_.Resize(n);  // all invalid
    return col;
  }

 private:
  Tag tag_ = Tag::kInt64;
  int64_t size_ = 0;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<Value> generic_;  // boxed fallback
  NullBitmap validity_;
};

/// \brief A window of rows in columnar form, optionally narrowed by a
/// selection vector (filter survivors, in ascending row order).
struct Batch {
  int64_t num_rows = 0;
  /// Global row id of row 0 when the batch comes straight off a table scan
  /// (min-row tracking in parallel aggregation); -1 once positions no longer
  /// map to table rows (e.g. after a row-at-a-time projection rebuild).
  int64_t base_row_id = -1;
  std::vector<ColumnVector> columns;
  /// Meaningful only when has_selection: the selected row indices. An empty
  /// selection with has_selection set means "no rows survived".
  std::vector<int32_t> selection;
  bool has_selection = false;

  int64_t SelectedCount() const {
    return has_selection ? static_cast<int64_t>(selection.size()) : num_rows;
  }
  /// The row index of the k-th selected row.
  int64_t RowIndex(int64_t k) const {
    return has_selection ? selection[static_cast<size_t>(k)] : k;
  }
  const int32_t* SelectionData() const {
    return has_selection ? selection.data() : nullptr;
  }

  void Reset(size_t ncols) {
    num_rows = 0;
    base_row_id = -1;
    columns.clear();
    columns.reserve(ncols);
    selection.clear();
    has_selection = false;
  }

  /// Re-boxes one row (row-at-a-time fallbacks inside batch operators).
  void MaterializeRow(int64_t row, Row* out) const {
    out->clear();
    out->reserve(columns.size());
    for (const ColumnVector& c : columns) out->push_back(c.GetValue(row));
  }
};

}  // namespace aggify
