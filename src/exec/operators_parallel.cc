// Morsel-driven parallel aggregation: ExtractMorselPipeline,
// ParallelPartialAggOp, and the Gather exchange root (declared in
// operators.h, rationale in docs/PARALLELISM.md).
//
// Concurrency model in one paragraph: the coordinator thread (the only one
// that ever touches the plan tree, the shared Database counters, or the
// plan cache) fans out one task per partition to the global thread pool at
// Open and blocks until all futures resolve. Workers share only immutable
// state — the base table, bound expressions, aggregate function objects —
// and write only their own Partial (group states + private IoStats through
// a context override). Everything mutable crosses the thread boundary
// exactly twice: context snapshot out at fan-out, Partial back at join.
#include <algorithm>
#include <future>
#include <utility>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "exec/eval.h"
#include "exec/operators.h"
#include "storage/table.h"

namespace aggify {

bool ExtractMorselPipeline(const Operator& root, MorselPipeline* out) {
  out->table = nullptr;
  out->steps.clear();
  std::vector<MorselPipeline::Step> top_down;
  const Operator* cur = &root;
  bool seen_project = false;
  for (;;) {
    if (const auto* scan = dynamic_cast<const SeqScanOp*>(cur)) {
      if (scan->base_table() == nullptr) return false;
      out->table = scan->base_table();
      out->scan_schema = &scan->schema();
      break;
    }
    if (dynamic_cast<const RenameOp*>(cur) != nullptr) {
      // Pure pass-through: rows are unchanged, only the schema qualifier
      // differs, and bound_index positions align across it.
      cur = cur->children()[0];
      continue;
    }
    if (const auto* filter = dynamic_cast<const FilterOp*>(cur)) {
      if (filter->predicate() == nullptr ||
          !ExprIsParallelSafe(*filter->predicate())) {
        return false;
      }
      const Operator* child = filter->children()[0];
      MorselPipeline::Step step;
      step.filter = filter->predicate();
      step.in_schema = &child->schema();
      step.out_schema = step.in_schema;
      top_down.push_back(step);
      cur = child;
      continue;
    }
    if (const auto* project = dynamic_cast<const ProjectOp*>(cur)) {
      if (seen_project) return false;
      seen_project = true;
      for (const auto& e : project->exprs()) {
        if (e == nullptr || !ExprIsParallelSafe(*e)) return false;
      }
      const Operator* child = project->children()[0];
      MorselPipeline::Step step;
      step.project = &project->exprs();
      step.in_schema = &child->schema();
      step.out_schema = &project->schema();
      top_down.push_back(step);
      cur = child;
      continue;
    }
    // Joins, index seeks, CTE/rows scans, sorts, nested aggregates: serial.
    return false;
  }
  out->steps.assign(top_down.rbegin(), top_down.rend());
  return true;
}

namespace {

Result<std::vector<std::unique_ptr<AggregateState>>> InitStates(
    const std::vector<AggregateSpec>& aggs) {
  std::vector<std::unique_ptr<AggregateState>> states;
  states.reserve(aggs.size());
  for (const auto& spec : aggs) {
    ASSIGN_OR_RETURN(auto state, spec.function->Init());
    states.push_back(std::move(state));
  }
  return states;
}

}  // namespace

ParallelPartialAggOp::ParallelPartialAggOp(OperatorPtr serial_child,
                                           std::vector<ExprPtr> group_exprs,
                                           std::vector<AggregateSpec> aggs,
                                           Schema out_schema, int dop,
                                           int64_t morsel_rows)
    : child_(std::move(serial_child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)),
      schema_(std::move(out_schema)),
      dop_(dop < 1 ? 1 : dop),
      morsel_rows_(morsel_rows < 1 ? 1 : morsel_rows) {
  // The planner validated the shape before constructing us; extraction here
  // only re-derives the non-owning views into the retained subtree.
  bool ok = ExtractMorselPipeline(*child_, &pipeline_);
  AGGIFY_UNUSED(ok);
}

Status ParallelPartialAggOp::RunPartition(Partial* partial, int partition,
                                          int64_t morsel_rows,
                                          const ExecContext& parent_ctx) const {
  // Private context: shares the immutable database/frame/variable views but
  // accounts I/O into this partial's counters. The parallel-safety gate
  // guarantees the hooks (subquery executor, UDF invoker) are never reached
  // from here.
  ExecContext ctx = parent_ctx;
  ctx.set_stats_override(&partial->stats);

  const Table& table = *pipeline_.table;
  const int64_t num_rows = table.num_rows();
  const Schema& agg_schema = child_->schema();
  int64_t last_page = -1;
  Row row;
  for (int64_t morsel = partition; morsel * morsel_rows < num_rows;
       morsel += dop_) {
    const int64_t begin = morsel * morsel_rows;
    const int64_t end = std::min(begin + morsel_rows, num_rows);
    for (int64_t row_id = begin; row_id < end; ++row_id) {
      AGGIFY_FAILPOINT("exec.scan.next");
      row = table.ReadRow(row_id, &last_page, &ctx.stats());
      ++ctx.stats().rows_produced;
      // Replay the pipeline steps bottom-up, exactly as the serial
      // operators would.
      bool keep = true;
      for (const auto& step : pipeline_.steps) {
        RowFrame frame{&row, step.in_schema, ctx.frame()};
        ExecContext::FrameScope scope(&ctx, &frame);
        if (step.filter != nullptr) {
          ASSIGN_OR_RETURN(keep, EvalPredicate(*step.filter, ctx));
          if (!keep) break;
        } else {
          Row projected;
          projected.reserve(step.project->size());
          for (const auto& e : *step.project) {
            ASSIGN_OR_RETURN(Value v, EvalExpr(*e, ctx));
            projected.push_back(std::move(v));
          }
          row = std::move(projected);
        }
      }
      if (!keep) continue;

      Row key;
      {
        RowFrame frame{&row, &agg_schema, ctx.frame()};
        ExecContext::FrameScope scope(&ctx, &frame);
        key.reserve(group_exprs_.size());
        for (const auto& g : group_exprs_) {
          ASSIGN_OR_RETURN(Value v, EvalExpr(*g, ctx));
          key.push_back(std::move(v));
        }
      }
      auto it = partial->groups.find(key);
      if (it == partial->groups.end()) {
        PartialEntry entry;
        ASSIGN_OR_RETURN(entry.states, InitStates(aggs_));
        entry.min_row = row_id;
        it = partial->groups.emplace(std::move(key), std::move(entry)).first;
      }
      for (size_t i = 0; i < aggs_.size(); ++i) {
        RETURN_NOT_OK(AccumulateInto(aggs_[i], it->second.states[i].get(),
                                     row, agg_schema, ctx));
      }
    }
  }
  return Status::OK();
}

Status ParallelPartialAggOp::Open(ExecContext& ctx) {
  ready_.clear();
  emit_pos_ = 0;
  if (pipeline_.table == nullptr) {
    return Status::Internal(
        "ParallelPartialAgg built over a non-morselizable pipeline");
  }

  // Page-aligned morsels: no table page spans two partitions, so the summed
  // worker logical_reads equal the serial scan's count exactly.
  const int64_t rpp = std::max<int64_t>(pipeline_.table->rows_per_page(), 1);
  const int64_t morsel_rows = ((morsel_rows_ + rpp - 1) / rpp) * rpp;

  std::vector<Partial> partials(static_cast<size_t>(dop_));
  std::vector<std::future<Status>> futures;
  futures.reserve(static_cast<size_t>(dop_));
  for (int p = 0; p < dop_; ++p) {
    Partial* partial = &partials[static_cast<size_t>(p)];
    futures.push_back(ThreadPool::Global().Submit(
        [this, partial, p, morsel_rows, &ctx]() -> Status {
          return RunPartition(partial, p, morsel_rows, ctx);
        }));
  }
  // Join every worker before touching the partials (or returning an error —
  // the lambdas capture locals of this frame). First failure in partition
  // order wins, mirroring the serial scan's first-error semantics.
  Status failure;
  for (auto& f : futures) {
    Status s = f.get();
    if (!s.ok() && failure.ok()) failure = s;
  }
  for (const Partial& partial : partials) {
    ctx.stats().MergeFrom(partial.stats);
  }
  RETURN_NOT_OK(failure);

  // Combine partials in fixed partition order with the proven Merge (§3.1).
  std::unordered_map<Row, size_t, RowHash, RowEq> index;
  for (auto& partial : partials) {
    for (auto& [key, entry] : partial.groups) {
      auto it = index.find(key);
      if (it == index.end()) {
        index.emplace(key, ready_.size());
        ready_.push_back(ReadyGroup{key, std::move(entry.states),
                                    entry.min_row});
        continue;
      }
      ReadyGroup& base = ready_[it->second];
      base.min_row = std::min(base.min_row, entry.min_row);
      for (size_t i = 0; i < aggs_.size(); ++i) {
        RETURN_NOT_OK(aggs_[i].function->Merge(base.states[i].get(),
                                               entry.states[i].get(), &ctx));
      }
    }
  }
  // Serial HashAggregate emits groups in first-seen scan order == ascending
  // minimum contributing row id. Reproduce it so parallelism is invisible.
  std::sort(ready_.begin(), ready_.end(),
            [](const ReadyGroup& a, const ReadyGroup& b) {
              return a.min_row < b.min_row;
            });
  // Scalar aggregate over empty input still emits one row.
  if (group_exprs_.empty() && ready_.empty()) {
    ASSIGN_OR_RETURN(auto states, InitStates(aggs_));
    ready_.push_back(ReadyGroup{Row{}, std::move(states), 0});
  }
  return Status::OK();
}

Result<bool> ParallelPartialAggOp::Next(ExecContext& ctx, Row* out) {
  if (emit_pos_ >= ready_.size()) return false;
  ReadyGroup& group = ready_[emit_pos_++];
  *out = group.key;
  AGGIFY_FAILPOINT("exec.agg.terminate");
  for (size_t i = 0; i < aggs_.size(); ++i) {
    ASSIGN_OR_RETURN(Value v,
                     aggs_[i].function->Terminate(group.states[i].get(), &ctx));
    out->push_back(std::move(v));
  }
  ++ctx.stats().rows_produced;
  return true;
}

Status ParallelPartialAggOp::Close(ExecContext& ctx) {
  AGGIFY_UNUSED(ctx);
  ready_.clear();
  return Status::OK();
}

std::string ParallelPartialAggOp::Describe() const {
  std::string out = "ParallelPartialAgg(";
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_exprs_[i]->ToString();
  }
  out += group_exprs_.empty() ? "" : "; ";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggs_[i].function->name();
  }
  return out + ")";
}

}  // namespace aggify
