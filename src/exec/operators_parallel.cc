// Morsel-driven parallel aggregation: ExtractMorselPipeline,
// ParallelPartialAggOp, and the Gather exchange root (declared in
// operators.h, rationale in docs/PARALLELISM.md).
//
// Concurrency model in one paragraph: the coordinator thread (the only one
// that ever touches the plan tree, the shared Database counters, or the
// plan cache) fans out one task per partition to the global thread pool at
// Open and blocks until all futures resolve. Workers share only immutable
// state — the base table, bound expressions, aggregate function objects —
// and write only their own Partial (group states + private IoStats through
// a context override). Everything mutable crosses the thread boundary
// exactly twice: context snapshot out at fan-out, Partial back at join.
#include <algorithm>
#include <future>
#include <utility>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "exec/batch_pipeline.h"
#include "exec/eval.h"
#include "exec/operators.h"
#include "storage/table.h"

namespace aggify {

bool ExtractMorselPipeline(const Operator& root, MorselPipeline* out) {
  out->table = nullptr;
  out->steps.clear();
  std::vector<MorselPipeline::Step> top_down;
  const Operator* cur = &root;
  bool seen_project = false;
  for (;;) {
    if (const auto* scan = dynamic_cast<const SeqScanOp*>(cur)) {
      if (scan->base_table() == nullptr) return false;
      out->table = scan->base_table();
      out->scan_schema = &scan->schema();
      break;
    }
    if (dynamic_cast<const RenameOp*>(cur) != nullptr) {
      // Pure pass-through: rows are unchanged, only the schema qualifier
      // differs, and bound_index positions align across it.
      cur = cur->children()[0];
      continue;
    }
    if (const auto* filter = dynamic_cast<const FilterOp*>(cur)) {
      if (filter->predicate() == nullptr ||
          !ExprIsParallelSafe(*filter->predicate())) {
        return false;
      }
      const Operator* child = filter->children()[0];
      MorselPipeline::Step step;
      step.filter = filter->predicate();
      step.in_schema = &child->schema();
      step.out_schema = step.in_schema;
      top_down.push_back(step);
      cur = child;
      continue;
    }
    if (const auto* project = dynamic_cast<const ProjectOp*>(cur)) {
      if (seen_project) return false;
      seen_project = true;
      for (const auto& e : project->exprs()) {
        if (e == nullptr || !ExprIsParallelSafe(*e)) return false;
      }
      const Operator* child = project->children()[0];
      MorselPipeline::Step step;
      step.project = &project->exprs();
      step.in_schema = &child->schema();
      step.out_schema = &project->schema();
      top_down.push_back(step);
      cur = child;
      continue;
    }
    // Joins, index seeks, CTE/rows scans, sorts, nested aggregates: serial.
    return false;
  }
  out->steps.assign(top_down.rbegin(), top_down.rend());
  return true;
}

namespace {

Result<std::vector<std::unique_ptr<AggregateState>>> InitStates(
    const std::vector<AggregateSpec>& aggs) {
  std::vector<std::unique_ptr<AggregateState>> states;
  states.reserve(aggs.size());
  for (const auto& spec : aggs) {
    ASSIGN_OR_RETURN(auto state, spec.function->Init());
    states.push_back(std::move(state));
  }
  return states;
}

}  // namespace

/// The compiled batch pipeline, built once on the coordinator before
/// fan-out and shared read-only by all workers.
struct ParallelPartialAggOp::BatchExec {
  struct Step {
    const Expr* filter = nullptr;          ///< non-null for filter steps
    const Schema* in_schema = nullptr;
    CompiledPredicate compiled;            ///< !ok -> row-wise per batch
    std::vector<int> shuffle;              ///< project steps (colref-only)
  };
  std::vector<Step> steps;
  std::vector<std::vector<int>> agg_arg_cols;
  std::vector<int> group_cols;
};

void ParallelPartialAggOp::PrepareBatchExec(ExecContext& ctx) {
  batch_exec_.reset();
  if (!use_batch_ || pipeline_.table == nullptr) return;
  auto exec = std::make_shared<BatchExec>();
  auto bind_all = [](const std::vector<ExprPtr>& exprs, size_t ncols,
                     std::vector<int>* cols) {
    if (!AllBoundColumnRefs(exprs, cols)) return false;
    for (int c : *cols) {
      if (c >= static_cast<int>(ncols)) return false;
    }
    return true;
  };
  const size_t agg_ncols = child_->schema().num_columns();
  if (!bind_all(group_exprs_, agg_ncols, &exec->group_cols)) return;
  for (const auto& spec : aggs_) {
    std::vector<int> cols;
    if (!bind_all(spec.args, agg_ncols, &cols)) return;
    exec->agg_arg_cols.push_back(std::move(cols));
  }
  for (const auto& step : pipeline_.steps) {
    BatchExec::Step s;
    s.in_schema = step.in_schema;
    if (step.filter != nullptr) {
      s.filter = step.filter;
      s.compiled = CompileBatchPredicate(*step.filter, *step.in_schema, ctx);
    } else if (!bind_all(*step.project, step.in_schema->num_columns(),
                         &s.shuffle)) {
      // A computing projection would rebuild batches and lose the row ids
      // min-row emission ordering needs; keep the row replay instead.
      return;
    }
    exec->steps.push_back(std::move(s));
  }
  batch_exec_ = std::move(exec);
}

Status ParallelPartialAggOp::RunPartitionBatch(
    Partial* partial, int partition, int64_t morsel_rows,
    const ExecContext& parent_ctx, std::atomic<bool>* abort) const {
  ExecContext ctx = parent_ctx;
  ctx.set_stats_override(&partial->stats);
  // Transient reservation for this worker's live morsel buffer; re-charged
  // per morsel, auto-released when the worker finishes (the accountant in
  // the coordinator's QueryContext outlives every joined worker).
  ScopedCharge morsel_buffer;
  const BatchExec& exec = *batch_exec_;
  const Table& table = *pipeline_.table;
  const int64_t num_rows = table.num_rows();
  const size_t scan_ncols = pipeline_.scan_schema->num_columns();
  int64_t last_page = -1;
  Batch batch;
  // Group ordinals local to this partition; PartialEntry pointers are
  // stable (node-based map), gsel holds batch-local row indices.
  std::unordered_map<Row, size_t, RowHash, RowEq> ordinals;
  std::vector<PartialEntry*> entries;
  std::vector<std::vector<int32_t>> gsel;
  std::vector<size_t> touched;
  for (int64_t morsel = partition; morsel * morsel_rows < num_rows;
       morsel += dop_) {
    // Sibling-stop poll: a failed/cancelled partition sets the shared flag
    // and the rest of the fragment quiesces at its next morsel boundary.
    if (abort->load(std::memory_order_acquire)) return Status::OK();
    AGGIFY_FAILPOINT_SLEEP("exec.slow_operator");
    RETURN_NOT_OK(ctx.CheckInterrupts());
    const int64_t begin = morsel * morsel_rows;
    const int64_t n = std::min(morsel_rows, num_rows - begin);
    AGGIFY_FAILPOINT("exec.scan.next");
    if (MemoryAccountant* acc = ctx.accountant()) {
      RETURN_NOT_OK(morsel_buffer.Charge(
          acc, n * kEstimatedBatchBytesPerValue *
                   static_cast<int64_t>(scan_ncols)));
    }
    const Row* rows = table.ReadBatch(begin, n, &last_page, &ctx.stats());
    ctx.stats().rows_produced += n;
    batch.Reset(scan_ncols);
    batch.num_rows = n;
    batch.base_row_id = begin;
    for (size_t c = 0; c < scan_ncols; ++c) {
      // Pruned columns (set_batch_columns) skip the unboxing copy; the
      // planner proved nothing in the pipeline reads them.
      if (!batch_columns_.empty() && !batch_columns_[c]) {
        batch.columns.push_back(ColumnVector::NullColumn(n));
      } else {
        batch.columns.push_back(ColumnVector::FromRows(rows, n, c));
      }
    }
    bool dead = false;
    for (const auto& s : exec.steps) {
      if (s.filter != nullptr) {
        if (!ApplyCompiledPredicate(s.compiled, &batch)) {
          RETURN_NOT_OK(FilterBatchRowwise(*s.filter, *s.in_schema, ctx,
                                           &batch));
        }
        if (batch.SelectedCount() == 0) {
          dead = true;
          break;
        }
      } else {
        ProjectBatchColumns(s.shuffle, &batch);
      }
    }
    if (dead) continue;
    const int64_t sn = batch.SelectedCount();
    if (sn == 0) continue;
    if (group_exprs_.empty()) {
      Row key;  // the single scalar group
      auto it = partial->groups.find(key);
      if (it == partial->groups.end()) {
        PartialEntry entry;
        ASSIGN_OR_RETURN(entry.states, InitStates(aggs_));
        entry.min_row = begin + batch.RowIndex(0);
        if (MemoryAccountant* acc = ctx.accountant()) {
          const int64_t bytes = EstimateGroupBytes(key, aggs_.size());
          RETURN_NOT_OK(acc->TryCharge(bytes));
          partial->charged += bytes;
        }
        it = partial->groups.emplace(std::move(key), std::move(entry)).first;
      }
      for (size_t i = 0; i < aggs_.size(); ++i) {
        RETURN_NOT_OK(AccumulateBatchInto(
            aggs_[i], exec.agg_arg_cols[i], it->second.states[i].get(), batch,
            batch.SelectionData(), sn, ctx));
      }
      continue;
    }
    touched.clear();
    Row key;
    for (int64_t k = 0; k < sn; ++k) {
      const int64_t i = batch.RowIndex(k);
      key.clear();
      key.reserve(exec.group_cols.size());
      for (int c : exec.group_cols) {
        key.push_back(batch.columns[static_cast<size_t>(c)].GetValue(i));
      }
      size_t ord;
      auto it = ordinals.find(key);
      if (it == ordinals.end()) {
        ord = entries.size();
        ordinals.emplace(key, ord);
        PartialEntry entry;
        ASSIGN_OR_RETURN(entry.states, InitStates(aggs_));
        entry.min_row = begin + i;  // first touch, rows ascending
        if (MemoryAccountant* acc = ctx.accountant()) {
          const int64_t bytes = EstimateGroupBytes(key, aggs_.size());
          RETURN_NOT_OK(acc->TryCharge(bytes));
          partial->charged += bytes;
        }
        auto inserted = partial->groups.emplace(key, std::move(entry)).first;
        entries.push_back(&inserted->second);
        gsel.emplace_back();
      } else {
        ord = it->second;
      }
      if (gsel[ord].empty()) touched.push_back(ord);
      gsel[ord].push_back(static_cast<int32_t>(i));
    }
    for (size_t ord : touched) {
      for (size_t i = 0; i < aggs_.size(); ++i) {
        RETURN_NOT_OK(AccumulateBatchInto(
            aggs_[i], exec.agg_arg_cols[i], entries[ord]->states[i].get(),
            batch, gsel[ord].data(), static_cast<int64_t>(gsel[ord].size()),
            ctx));
      }
      gsel[ord].clear();
    }
  }
  return Status::OK();
}

ParallelPartialAggOp::ParallelPartialAggOp(OperatorPtr serial_child,
                                           std::vector<ExprPtr> group_exprs,
                                           std::vector<AggregateSpec> aggs,
                                           Schema out_schema, int dop,
                                           int64_t morsel_rows)
    : child_(std::move(serial_child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)),
      schema_(std::move(out_schema)),
      dop_(dop < 1 ? 1 : dop),
      morsel_rows_(morsel_rows < 1 ? 1 : morsel_rows) {
  // The planner validated the shape before constructing us; extraction here
  // only re-derives the non-owning views into the retained subtree.
  bool ok = ExtractMorselPipeline(*child_, &pipeline_);
  AGGIFY_UNUSED(ok);
}

Status ParallelPartialAggOp::RunPartition(Partial* partial, int partition,
                                          int64_t morsel_rows,
                                          const ExecContext& parent_ctx,
                                          std::atomic<bool>* abort) const {
  // Private context: shares the immutable database/frame/variable views but
  // accounts I/O into this partial's counters. The parallel-safety gate
  // guarantees the hooks (subquery executor, UDF invoker) are never reached
  // from here.
  ExecContext ctx = parent_ctx;
  ctx.set_stats_override(&partial->stats);

  const Table& table = *pipeline_.table;
  const int64_t num_rows = table.num_rows();
  const Schema& agg_schema = child_->schema();
  int64_t last_page = -1;
  Row row;
  for (int64_t morsel = partition; morsel * morsel_rows < num_rows;
       morsel += dop_) {
    // Sibling-stop poll + interrupt check at morsel granularity — the same
    // cadence the batch worker uses, so cancel/deadline latency is bounded
    // by one morsel either way.
    if (abort->load(std::memory_order_acquire)) return Status::OK();
    AGGIFY_FAILPOINT_SLEEP("exec.slow_operator");
    RETURN_NOT_OK(ctx.CheckInterrupts());
    const int64_t begin = morsel * morsel_rows;
    const int64_t end = std::min(begin + morsel_rows, num_rows);
    for (int64_t row_id = begin; row_id < end; ++row_id) {
      AGGIFY_FAILPOINT("exec.scan.next");
      row = table.ReadRow(row_id, &last_page, &ctx.stats());
      ++ctx.stats().rows_produced;
      // Replay the pipeline steps bottom-up, exactly as the serial
      // operators would.
      bool keep = true;
      for (const auto& step : pipeline_.steps) {
        RowFrame frame{&row, step.in_schema, ctx.frame()};
        ExecContext::FrameScope scope(&ctx, &frame);
        if (step.filter != nullptr) {
          ASSIGN_OR_RETURN(keep, EvalPredicate(*step.filter, ctx));
          if (!keep) break;
        } else {
          Row projected;
          projected.reserve(step.project->size());
          for (const auto& e : *step.project) {
            ASSIGN_OR_RETURN(Value v, EvalExpr(*e, ctx));
            projected.push_back(std::move(v));
          }
          row = std::move(projected);
        }
      }
      if (!keep) continue;

      Row key;
      {
        RowFrame frame{&row, &agg_schema, ctx.frame()};
        ExecContext::FrameScope scope(&ctx, &frame);
        key.reserve(group_exprs_.size());
        for (const auto& g : group_exprs_) {
          ASSIGN_OR_RETURN(Value v, EvalExpr(*g, ctx));
          key.push_back(std::move(v));
        }
      }
      auto it = partial->groups.find(key);
      if (it == partial->groups.end()) {
        PartialEntry entry;
        ASSIGN_OR_RETURN(entry.states, InitStates(aggs_));
        entry.min_row = row_id;
        if (MemoryAccountant* acc = ctx.accountant()) {
          const int64_t bytes = EstimateGroupBytes(key, aggs_.size());
          RETURN_NOT_OK(acc->TryCharge(bytes));
          partial->charged += bytes;
        }
        it = partial->groups.emplace(std::move(key), std::move(entry)).first;
      }
      for (size_t i = 0; i < aggs_.size(); ++i) {
        RETURN_NOT_OK(AccumulateInto(aggs_[i], it->second.states[i].get(),
                                     row, agg_schema, ctx));
      }
    }
  }
  return Status::OK();
}

Status ParallelPartialAggOp::Open(ExecContext& ctx) {
  ready_.clear();
  emit_pos_ = 0;
  // Forget (not release) any stale charge from a failed prior execution:
  // the attempt-boundary rollback in RunPlan already returned those bytes.
  charged_ = 0;
  if (pipeline_.table == nullptr) {
    return Status::Internal(
        "ParallelPartialAgg built over a non-morselizable pipeline");
  }

  // Page-aligned morsels: no table page spans two partitions, so the summed
  // worker logical_reads equal the serial scan's count exactly.
  const int64_t rpp = std::max<int64_t>(pipeline_.table->rows_per_page(), 1);
  const int64_t morsel_rows = ((morsel_rows_ + rpp - 1) / rpp) * rpp;

  // Compile the batch pipeline (coordinator only; workers read it shared).
  PrepareBatchExec(ctx);
  const bool batch = batch_exec_ != nullptr;

  std::vector<Partial> partials(static_cast<size_t>(dop_));
  std::vector<std::future<Status>> futures;
  futures.reserve(static_cast<size_t>(dop_));
  // Shared stop flag of this fan-out: the first partition to fail — or to
  // observe cancellation/deadline — raises it, and every sibling returns at
  // its next morsel boundary instead of scanning to the end. Stack-local is
  // safe: every future is joined below before this frame returns.
  std::atomic<bool> abort{false};
  for (int p = 0; p < dop_; ++p) {
    Partial* partial = &partials[static_cast<size_t>(p)];
    futures.push_back(ThreadPool::Global().Submit(
        [this, partial, p, morsel_rows, batch, &ctx, &abort]() -> Status {
          Status s =
              batch ? RunPartitionBatch(partial, p, morsel_rows, ctx, &abort)
                    : RunPartition(partial, p, morsel_rows, ctx, &abort);
          if (!s.ok()) abort.store(true, std::memory_order_release);
          return s;
        }));
  }
  // Join every worker before touching the partials (or returning an error —
  // the lambdas capture locals of this frame). First failure in partition
  // order wins, mirroring the serial scan's first-error semantics.
  Status failure;
  for (auto& f : futures) {
    Status s = f.get();
    if (!s.ok() && failure.ok()) failure = s;
  }
  for (const Partial& partial : partials) {
    ctx.stats().MergeFrom(partial.stats);
    // Record every worker's group-state charge before any error exit so
    // Close (success) or RunPlan's rollback (failure) releases exactly what
    // was taken.
    charged_ += partial.charged;
  }
  RETURN_NOT_OK(failure);

  // Combine partials in fixed partition order with the proven Merge (§3.1).
  std::unordered_map<Row, size_t, RowHash, RowEq> index;
  for (auto& partial : partials) {
    for (auto& [key, entry] : partial.groups) {
      auto it = index.find(key);
      if (it == index.end()) {
        index.emplace(key, ready_.size());
        ready_.push_back(ReadyGroup{key, std::move(entry.states),
                                    entry.min_row});
        continue;
      }
      ReadyGroup& base = ready_[it->second];
      base.min_row = std::min(base.min_row, entry.min_row);
      for (size_t i = 0; i < aggs_.size(); ++i) {
        RETURN_NOT_OK(aggs_[i].function->Merge(base.states[i].get(),
                                               entry.states[i].get(), &ctx));
      }
    }
  }
  // Serial HashAggregate emits groups in first-seen scan order == ascending
  // minimum contributing row id. Reproduce it so parallelism is invisible.
  std::sort(ready_.begin(), ready_.end(),
            [](const ReadyGroup& a, const ReadyGroup& b) {
              return a.min_row < b.min_row;
            });
  // Scalar aggregate over empty input still emits one row.
  if (group_exprs_.empty() && ready_.empty()) {
    ASSIGN_OR_RETURN(auto states, InitStates(aggs_));
    ready_.push_back(ReadyGroup{Row{}, std::move(states), 0});
  }
  return Status::OK();
}

Result<bool> ParallelPartialAggOp::Next(ExecContext& ctx, Row* out) {
  if (emit_pos_ >= ready_.size()) return false;
  ReadyGroup& group = ready_[emit_pos_++];
  *out = group.key;
  AGGIFY_FAILPOINT("exec.agg.terminate");
  for (size_t i = 0; i < aggs_.size(); ++i) {
    ASSIGN_OR_RETURN(Value v,
                     aggs_[i].function->Terminate(group.states[i].get(), &ctx));
    out->push_back(std::move(v));
  }
  ++ctx.stats().rows_produced;
  return true;
}

Status ParallelPartialAggOp::Close(ExecContext& ctx) {
  if (MemoryAccountant* acc = ctx.accountant()) acc->Release(charged_);
  charged_ = 0;
  ready_.clear();
  return Status::OK();
}

std::string ParallelPartialAggOp::Describe() const {
  std::string out = "ParallelPartialAgg(";
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_exprs_[i]->ToString();
  }
  out += group_exprs_.empty() ? "" : "; ";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggs_[i].function->name();
  }
  out += ")";
  if (use_batch_) out += " [batch]";
  return out;
}

}  // namespace aggify
