// Batch-pipeline building blocks shared by the vectorized operators
// (operators_batch.cc) and the parallel batch workers (operators_parallel.cc):
// predicate compilation to comparison kernels, selection-vector application,
// and the row-at-a-time fallbacks that keep semantics exact when a batch or
// expression defeats the kernels.
#pragma once

#include <vector>

#include "exec/batch.h"
#include "exec/exec_context.h"
#include "parser/expr.h"

namespace aggify {

/// One compiled conjunct: `column <op> rhs`, rhs a column or a constant
/// evaluated once per execution.
struct CompiledConjunct {
  int lhs_col = -1;
  BinaryOp op = BinaryOp::kEq;
  bool rhs_is_col = false;
  int rhs_col = -1;
  Value rhs_const;
};

struct CompiledPredicate {
  bool ok = false;  ///< whole predicate compiled into conjunct kernels
  std::vector<CompiledConjunct> conjuncts;
};

/// Compiles `pred` (bound against `schema`) into comparison kernels: a
/// conjunction of `colref <cmp> rhs` terms where rhs is another bound colref
/// or a column-free, engine-safe expression. Constant sides are evaluated
/// once against `ctx` — sound because nothing inside one SELECT execution can
/// change variables or correlation frames between rows. Anything else (OR,
/// IS NULL, arithmetic on columns, subqueries, unbound names) yields
/// ok=false and callers keep the row-at-a-time path, so errors and
/// three-valued logic surface exactly as before.
CompiledPredicate CompileBatchPredicate(const Expr& pred, const Schema& schema,
                                        ExecContext& ctx);

/// Applies a compiled predicate, narrowing batch->selection (NULL operands
/// drop the row, SQL WHERE semantics). Returns false — batch untouched —
/// when a referenced column's runtime tag (kGeneric) or a non-numeric
/// constant defeats the kernels; the caller must fall back to row-at-a-time
/// evaluation for this batch.
bool ApplyCompiledPredicate(const CompiledPredicate& pred, Batch* batch);

/// Row-at-a-time filter fallback: EvalPredicate per selected row, exactly
/// FilterOp::Next semantics (NULL drops the row, errors propagate).
Status FilterBatchRowwise(const Expr& pred, const Schema& schema,
                          ExecContext& ctx, Batch* batch);

/// True if every expression is a bound column reference; fills `cols` with
/// the referenced input positions.
bool AllBoundColumnRefs(const std::vector<ExprPtr>& exprs,
                        std::vector<int>* cols);

/// Bound-colref projection: replaces the batch's columns by the shuffle.
/// Selection and row ids survive (no data moves).
void ProjectBatchColumns(const std::vector<int>& cols, Batch* batch);

/// Row-at-a-time projection fallback: evaluates `exprs` per selected row and
/// rebuilds the batch compacted (selection cleared, base_row_id lost).
Status ProjectBatchRowwise(const std::vector<ExprPtr>& exprs,
                           const Schema& in_schema, ExecContext& ctx,
                           Batch* batch);

}  // namespace aggify
