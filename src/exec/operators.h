// The physical operator zoo.
#pragma once

#include <atomic>
#include <unordered_map>
#include <vector>

#include "aggregates/aggregate_function.h"
#include "common/memory_accountant.h"
#include "exec/operator.h"
#include "parser/expr.h"

namespace aggify {

class Table;
class HashIndex;
struct CompiledPredicate;  // exec/batch_pipeline.h

// ---------------------------------------------------------------------------
// Memory accounting (docs/ROBUSTNESS.md)
// ---------------------------------------------------------------------------

/// \brief Deterministic estimate of a row's heap footprint: a fixed
/// per-value overhead plus string payloads (records recurse). Stateful
/// operators charge these estimates to the query's MemoryAccountant; the
/// estimate is a pure function of the value shapes, so the same data charges
/// the same bytes in row, batch, and worker pipelines and budget-driven
/// degradation decisions are reproducible.
int64_t EstimateRowBytes(const Row& row);

/// Charged per aggregate state in a group (builtin fold states are a couple
/// of Values; interpreted Agg_Δ states are larger but bounded by their
/// variable environment).
inline constexpr int64_t kAggStateBytes = 64;
/// Hash-table overhead per group entry (bucket, key header, state vector).
inline constexpr int64_t kGroupOverheadBytes = 64;
/// Per-value footprint of an unboxed columnar batch buffer (ColumnVector
/// slot + null bitmap amortized). rows × columns × this is the transient
/// charge of one live scan/morsel batch.
inline constexpr int64_t kEstimatedBatchBytesPerValue = 16;

/// Per-group charge of a hash/partial aggregation: identical whether the
/// group is built by the serial row loop, the batch fold, or a parallel
/// worker's partial (each worker charges its own partial's groups — parallel
/// genuinely holds more state, which is what the parallel→serial rung of the
/// degradation ladder reclaims).
inline int64_t EstimateGroupBytes(const Row& key, size_t num_aggs) {
  return kGroupOverheadBytes + EstimateRowBytes(key) +
         static_cast<int64_t>(num_aggs) * kAggStateBytes;
}

/// \brief Full table scan with buffer-pool page accounting.
class SeqScanOp : public Operator {
 public:
  SeqScanOp(const Table* table, std::string alias);
  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext& ctx) override;
  Result<bool> Next(ExecContext& ctx, Row* out) override;
  /// Page-aligned columnar batches straight off Table::ReadBatch; charges
  /// the same page reads and rows_produced as the row scan.
  Result<bool> NextBatch(ExecContext& ctx, Batch* out) override;
  Status Close(ExecContext& ctx) override;
  std::string Describe() const override;
  const Table* base_table() const override { return table_; }

  /// Scan-column pruning for the batch pipeline: when non-empty, NextBatch
  /// unboxes only the flagged columns and emits all-NULL placeholders for
  /// the rest. The planner sets this only after proving no expression above
  /// the scan references an unflagged column. The row path (Next) ignores
  /// it — rows always carry every column.
  void set_batch_columns(std::vector<bool> needed) {
    batch_columns_ = std::move(needed);
  }

 private:
  const Table* table_;
  Schema schema_;
  std::vector<bool> batch_columns_;
  int64_t pos_ = 0;
  int64_t last_page_ = -1;
  /// Bytes charged for the live batch buffer (the unboxed columnar copy of
  /// one page run); re-charged per batch, released at Close. This is the
  /// allocation the batch→row degradation rung reclaims.
  int64_t batch_charged_ = 0;
};

/// \brief Hash-index equality seek. The key expression is evaluated at Open
/// against the enclosing correlation frame / variables, which is how
/// parameterized per-invocation cursor queries hit the index.
class IndexSeekOp : public Operator {
 public:
  IndexSeekOp(const Table* table, std::string alias, const HashIndex* index,
              ExprPtr key);
  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext& ctx) override;
  Result<bool> Next(ExecContext& ctx, Row* out) override;
  Status Close(ExecContext& ctx) override;
  std::string Describe() const override;
  const Table* base_table() const override { return table_; }

 private:
  const Table* table_;
  Schema schema_;
  const HashIndex* index_;
  ExprPtr key_;
  const std::vector<int64_t>* matches_ = nullptr;
  size_t pos_ = 0;
  int64_t last_page_ = -1;
};

/// \brief Scans an in-memory rowset (CTE bindings, VALUES, spools).
/// Does not charge I/O: these are query-lifetime memory structures.
class RowsScanOp : public Operator {
 public:
  RowsScanOp(Schema schema, std::shared_ptr<const std::vector<Row>> rows,
             std::string label);
  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext& ctx) override;
  Result<bool> Next(ExecContext& ctx, Row* out) override;
  Status Close(ExecContext& ctx) override;
  std::string Describe() const override;

 private:
  Schema schema_;
  std::shared_ptr<const std::vector<Row>> rows_;
  std::string label_;
  size_t pos_ = 0;
};

/// \brief Pass-through that re-qualifies the child schema with a derived
/// table's alias. This is what makes `FROM (Q) q` fully pipelined: the
/// subquery's plan streams through instead of being materialized — the
/// "single pipelined query execution" benefit of §6.2.
class RenameOp : public Operator {
 public:
  RenameOp(OperatorPtr child, Schema schema)
      : child_(std::move(child)), schema_(std::move(schema)) {}
  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext& ctx) override { return child_->Open(ctx); }
  Result<bool> Next(ExecContext& ctx, Row* out) override {
    return child_->Next(ctx, out);
  }
  Result<bool> NextBatch(ExecContext& ctx, Batch* out) override {
    return child_->NextBatch(ctx, out);  // pure pass-through, like Next
  }
  Status Close(ExecContext& ctx) override { return child_->Close(ctx); }
  std::string Describe() const override {
    return "Rename(" +
           (schema_.num_columns() > 0 ? schema_.column(0).qualifier
                                      : std::string()) +
           ")";
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  /// Planner peephole support: the rename is a pure pass-through, so an
  /// order-agnostic parent may replace a Sort child with the Sort's input.
  OperatorPtr& mutable_child() { return child_; }

 private:
  OperatorPtr child_;
  Schema schema_;
};

/// \brief Row filter; NULL predicate results drop the row (SQL WHERE).
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate);
  const Schema& schema() const override { return child_->schema(); }
  Status Open(ExecContext& ctx) override;
  Result<bool> Next(ExecContext& ctx, Row* out) override;
  /// Narrows the child batch's selection vector. The predicate is compiled
  /// to comparison kernels once per execution when it is a conjunction of
  /// `colref <cmp> constant/colref` terms over numeric columns; anything
  /// else evaluates row-at-a-time per selected row — identical semantics
  /// either way. Batches with no survivors are skipped, not returned.
  Result<bool> NextBatch(ExecContext& ctx, Batch* out) override;
  Status Close(ExecContext& ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  /// Morsel-pipeline extraction support (see ExtractMorselPipeline).
  const Expr* predicate() const { return predicate_.get(); }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
  // Lazily compiled on the first NextBatch of each execution (constants may
  // reference variables, so compilation needs a live context).
  std::shared_ptr<CompiledPredicate> compiled_;
};

/// \brief Computes the SELECT list.
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs, Schema out_schema);
  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext& ctx) override;
  Result<bool> Next(ExecContext& ctx, Row* out) override;
  /// All-bound-colref projections reduce to a column shuffle (no data
  /// moves); anything else evaluates row-at-a-time per selected row and
  /// rebuilds the batch compacted.
  Result<bool> NextBatch(ExecContext& ctx, Batch* out) override;
  Status Close(ExecContext& ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  /// Morsel-pipeline extraction support (see ExtractMorselPipeline).
  const std::vector<ExprPtr>& exprs() const { return exprs_; }

 private:
  enum class BatchMode { kUnknown, kColumnShuffle, kRowwise };

  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
  BatchMode batch_mode_ = BatchMode::kUnknown;
  std::vector<int> batch_cols_;  // shuffle indices for kColumnShuffle
};

/// \brief Equi hash join (build side = right). Supports inner and left
/// outer; an optional residual predicate runs on the concatenated row.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right, std::vector<ExprPtr> left_keys,
             std::vector<ExprPtr> right_keys, bool left_outer,
             ExprPtr residual);
  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext& ctx) override;
  Result<bool> Next(ExecContext& ctx, Row* out) override;
  Status Close(ExecContext& ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  struct KeyHash {
    size_t operator()(const Row& r) const { return HashRow(r); }
  };
  struct KeyEq {
    bool operator()(const Row& a, const Row& b) const { return RowsEqual(a, b); }
  };

  Result<bool> EvalKeys(ExecContext& ctx, const std::vector<ExprPtr>& keys,
                        const Row& row, const Schema& schema, Row* out_key);

  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  bool left_outer_;
  ExprPtr residual_;
  Schema schema_;

  std::unordered_map<Row, std::vector<Row>, KeyHash, KeyEq> build_;
  Row current_left_;
  const std::vector<Row>* probe_matches_ = nullptr;
  size_t probe_pos_ = 0;
  bool left_valid_ = false;
  bool left_matched_ = false;
};

/// \brief Nested-loop join; right side is materialized at Open. Handles
/// cross joins and arbitrary (non-equi) predicates; inner and left outer.
class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr predicate,
                   bool left_outer);
  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext& ctx) override;
  Result<bool> Next(ExecContext& ctx, Row* out) override;
  Status Close(ExecContext& ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  ExprPtr predicate_;
  bool left_outer_;
  Schema schema_;

  std::vector<Row> right_rows_;
  Row current_left_;
  size_t right_pos_ = 0;
  bool left_valid_ = false;
  bool left_matched_ = false;
};

struct SortKey {
  ExprPtr expr;
  bool descending = false;
};

/// \brief Full in-memory sort; stable, NULLs first ascending.
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<SortKey> keys);
  const Schema& schema() const override { return child_->schema(); }
  Status Open(ExecContext& ctx) override;
  Result<bool> Next(ExecContext& ctx, Row* out) override;
  Status Close(ExecContext& ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  /// Planner peephole support: surrender the child so an order-agnostic
  /// parent (hash aggregation) can splice the sort out of the plan.
  OperatorPtr TakeChild() { return std::move(child_); }

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
  int64_t charged_ = 0;  ///< bytes charged for rows_ (released at Close)
};

/// \brief TOP n: count expression evaluated at Open (supports TOP (@var)).
class TopNOp : public Operator {
 public:
  TopNOp(OperatorPtr child, ExprPtr count);
  const Schema& schema() const override { return child_->schema(); }
  Status Open(ExecContext& ctx) override;
  Result<bool> Next(ExecContext& ctx, Row* out) override;
  Status Close(ExecContext& ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  OperatorPtr child_;
  ExprPtr count_;
  int64_t remaining_ = 0;
};

/// \brief Hash-based DISTINCT.
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child);
  const Schema& schema() const override { return child_->schema(); }
  Status Open(ExecContext& ctx) override;
  Result<bool> Next(ExecContext& ctx, Row* out) override;
  Status Close(ExecContext& ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  struct RowHash {
    size_t operator()(const Row& r) const { return HashRow(r); }
  };
  struct RowEq {
    bool operator()(const Row& a, const Row& b) const { return RowsEqual(a, b); }
  };
  OperatorPtr child_;
  std::unordered_map<Row, bool, RowHash, RowEq> seen_;
};

/// \brief Concatenation of children (UNION ALL). Schemas must be
/// arity-compatible; the first child's schema is reported.
class UnionAllOp : public Operator {
 public:
  explicit UnionAllOp(std::vector<OperatorPtr> children);
  const Schema& schema() const override { return children_[0]->schema(); }
  Status Open(ExecContext& ctx) override;
  Result<bool> Next(ExecContext& ctx, Row* out) override;
  Status Close(ExecContext& ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override;

 private:
  std::vector<OperatorPtr> children_;
  size_t current_ = 0;
};

/// \brief One aggregate to compute: the function, its argument expressions
/// (evaluated against the input row), and the output column name.
struct AggregateSpec {
  std::shared_ptr<const AggregateFunction> function;
  std::vector<ExprPtr> args;
  std::string output_name;
};

/// \brief Hash aggregation (GROUP BY or scalar). With no GROUP BY and empty
/// input, emits one row of empty-state Terminate() results (SQL semantics).
/// Serial: one state per group; real partitioned aggregation lives in
/// ParallelPartialAggOp (the former single-threaded round-robin simulation
/// of partitions was replaced by it).
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, std::vector<ExprPtr> group_exprs,
                  std::vector<AggregateSpec> aggs, Schema out_schema);
  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext& ctx) override;
  Result<bool> Next(ExecContext& ctx, Row* out) override;
  Status Close(ExecContext& ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  /// Planner opt-in to the vectorized pipeline: Open drains the child via
  /// NextBatch and folds with AccumulateBatch instead of row-at-a-time.
  /// Requires every aggregate argument and group expression to be a bound
  /// column reference (the planner gates on this; Open re-checks and falls
  /// back to the row loop otherwise). Results are bit-identical.
  void set_use_batch(bool on) { use_batch_ = on; }
  bool use_batch() const { return use_batch_; }

 private:
  struct RowHash {
    size_t operator()(const Row& r) const { return HashRow(r); }
  };
  struct RowEq {
    bool operator()(const Row& a, const Row& b) const { return RowsEqual(a, b); }
  };

  /// Fills agg_arg_cols_/group_cols_; false if any expression is not a
  /// bound column reference into the child schema.
  bool PrepareBatchBindings();
  Status OpenBatch(ExecContext& ctx);

  OperatorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggregateSpec> aggs_;
  Schema schema_;
  bool use_batch_ = false;
  std::vector<std::vector<int>> agg_arg_cols_;
  std::vector<int> group_cols_;

  using GroupStates = std::vector<std::unique_ptr<AggregateState>>;
  std::unordered_map<Row, GroupStates, RowHash, RowEq> groups_;
  std::vector<Row> group_keys_;  // emission order
  size_t emit_pos_ = 0;
  int64_t charged_ = 0;  ///< bytes charged for groups_ (released at Close)
};

/// \brief Streaming (order-preserving) aggregation: the physical operator
/// Eq. 6 forces for ORDER BY cursor rewrites. Accumulates in input order;
/// with GROUP BY, input must arrive clustered by the group expressions.
class StreamAggregateOp : public Operator {
 public:
  StreamAggregateOp(OperatorPtr child, std::vector<ExprPtr> group_exprs,
                    std::vector<AggregateSpec> aggs, Schema out_schema);
  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext& ctx) override;
  Result<bool> Next(ExecContext& ctx, Row* out) override;
  Status Close(ExecContext& ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggregateSpec> aggs_;
  Schema schema_;

  bool child_exhausted_ = false;
  bool emitted_scalar_ = false;
  bool have_pending_ = false;
  Row pending_row_;  // first row of the next group
  Row pending_key_;
};

/// Helper shared by the aggregation operators: evaluates one aggregate's
/// argument expressions against an input row and accumulates.
Status AccumulateInto(const AggregateSpec& spec, AggregateState* state,
                      const Row& row, const Schema& in_schema,
                      ExecContext& ctx);

/// Batch counterpart: folds the selected rows of `batch` — `arg_cols` maps
/// the aggregate's (bound colref) arguments to batch columns — through
/// AccumulateBatch. Fires the same exec.agg.accumulate failpoint as
/// AccumulateInto (once per call), so fault-injection covers both pipelines.
Status AccumulateBatchInto(const AggregateSpec& spec,
                           const std::vector<int>& arg_cols,
                           AggregateState* state, const Batch& batch,
                           const int32_t* sel, int64_t count, ExecContext& ctx);

// ---------------------------------------------------------------------------
// Morsel-driven parallel aggregation (docs/PARALLELISM.md)
// ---------------------------------------------------------------------------

/// \brief A recognized morselizable input pipeline: a base-table SeqScan with
/// an optional chain of per-row steps (filters / one projection) above it.
/// All pointers are non-owning views into the retained serial subtree.
struct MorselPipeline {
  const Table* table = nullptr;
  const Schema* scan_schema = nullptr;  ///< aliased base-table schema
  struct Step {
    const Expr* filter = nullptr;                 ///< set for filter steps
    const std::vector<ExprPtr>* project = nullptr;  ///< set for project steps
    /// Schema of the rows entering the step (what its exprs were bound
    /// against); projections change the row shape to `out_schema`.
    const Schema* in_schema = nullptr;
    const Schema* out_schema = nullptr;
  };
  std::vector<Step> steps;  ///< bottom-up: applied scan → ... → agg input
};

/// \brief Recognizes `root` as a morselizable pipeline: any stack of
/// Rename (pass-through), at most one Project, and Filters over a SeqScan,
/// where every filter/project expression is parallel-safe
/// (ExprIsParallelSafe). Returns false — leaving `out` unspecified — for any
/// other shape (index seeks, joins, CTE scans, engine-re-entering
/// expressions), which the planner then keeps serial.
bool ExtractMorselPipeline(const Operator& root, MorselPipeline* out);

/// \brief Partitioned aggregation over a morselizable base-table pipeline —
/// the §3.1 parallel-execution protocol, for real this time.
///
/// Open fans out `dop` partition tasks to ThreadPool::Global(). Morsels are
/// page-aligned row ranges assigned statically (morsel i → partition
/// i % dop), so partition contents are a pure function of (table, dop,
/// morsel_rows) — results never depend on thread scheduling. Each worker
/// replays the pipeline steps per row on a private ExecContext (stats
/// overridden to a private IoStats, merged after join) and accumulates into
/// its own per-group states. The coordinator combines partials with the
/// proven Merge in fixed partition order and emits groups sorted by the
/// minimum contributing global row id — byte-identical to the serial
/// HashAggregate's first-seen emission order.
///
/// The serial child subtree is retained for Describe/children/worktable
/// fencing but never Opened. The planner instantiates this operator only
/// when every aggregate SupportsMerge() *and* ParallelSafe(), every
/// group/argument expression is parallel-safe, and the plan is not
/// order-enforced (Eq. 6 plans keep their Sort + StreamAggregate).
class ParallelPartialAggOp : public Operator {
 public:
  ParallelPartialAggOp(OperatorPtr serial_child,
                       std::vector<ExprPtr> group_exprs,
                       std::vector<AggregateSpec> aggs, Schema out_schema,
                       int dop, int64_t morsel_rows);
  const Schema& schema() const override { return schema_; }
  Status Open(ExecContext& ctx) override;
  Result<bool> Next(ExecContext& ctx, Row* out) override;
  Status Close(ExecContext& ctx) override;
  std::string Describe() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  int dop() const { return dop_; }
  /// Planner opt-in to the vectorized worker loop: each morsel becomes one
  /// columnar batch (Table::ReadBatch + compiled filter kernels +
  /// AccumulateBatch) instead of a per-row replay. Open re-checks that
  /// every aggregate argument / group expression is a bound colref and that
  /// any projection step is a pure column shuffle; otherwise workers keep
  /// the row replay. Results and IoStats are bit-identical either way.
  void set_use_batch(bool on) { use_batch_ = on; }
  bool use_batch() const { return use_batch_; }
  /// Scan-column pruning for the batch workers, mirroring
  /// SeqScanOp::set_batch_columns: when non-empty, morsel batches unbox only
  /// the flagged base-table columns. Planner-proven safe; the row replay
  /// ignores it.
  void set_batch_columns(std::vector<bool> needed) {
    batch_columns_ = std::move(needed);
  }

 private:
  struct RowHash {
    size_t operator()(const Row& r) const { return HashRow(r); }
  };
  struct RowEq {
    bool operator()(const Row& a, const Row& b) const { return RowsEqual(a, b); }
  };
  using GroupStates = std::vector<std::unique_ptr<AggregateState>>;
  struct PartialEntry {
    GroupStates states;
    int64_t min_row = 0;  ///< smallest contributing global row id
  };
  struct Partial {
    std::unordered_map<Row, PartialEntry, RowHash, RowEq> groups;
    IoStats stats;
    /// Bytes this partition charged to the query accountant (group state
    /// only; transient morsel batch buffers are released inside the loop).
    /// Written by the owning worker, summed by the coordinator after join.
    int64_t charged = 0;
  };
  struct ReadyGroup {
    Row key;
    GroupStates states;
    int64_t min_row = 0;
  };
  struct BatchExec;  // operators_parallel.cc: compiled batch pipeline

  /// `abort` is the shared stop flag of one fan-out: the first worker to
  /// fail (or observe cancellation/deadline) sets it, and every sibling
  /// polls it at morsel boundaries and returns early — so one dead
  /// partition quiesces the whole fragment promptly while the coordinator
  /// still joins every future.
  Status RunPartition(Partial* partial, int partition, int64_t morsel_rows,
                      const ExecContext& parent_ctx,
                      std::atomic<bool>* abort) const;
  Status RunPartitionBatch(Partial* partial, int partition,
                           int64_t morsel_rows, const ExecContext& parent_ctx,
                           std::atomic<bool>* abort) const;
  /// Compiles the batch pipeline into batch_exec_ (coordinator thread only);
  /// leaves it null when some shape defeats the batch kernels.
  void PrepareBatchExec(ExecContext& ctx);

  OperatorPtr child_;  ///< retained serial pipeline; never Opened
  MorselPipeline pipeline_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggregateSpec> aggs_;
  Schema schema_;
  int dop_;
  int64_t morsel_rows_;
  bool use_batch_ = false;
  std::vector<bool> batch_columns_;
  /// Immutable after Open's fan-out; workers read it concurrently.
  std::shared_ptr<const BatchExec> batch_exec_;

  std::vector<ReadyGroup> ready_;  ///< merged groups in emission order
  size_t emit_pos_ = 0;
  int64_t charged_ = 0;  ///< bytes charged across all partials + ready_
};

/// \brief Exchange root of a parallel fragment: keeps the plan's root
/// pull-based Volcano while marking the serial/parallel boundary in EXPLAIN
/// output ("Gather(dop=N)"). Pure delegation — the fan-out/fan-in happens
/// inside the ParallelPartialAgg child's Open.
class GatherOp : public Operator {
 public:
  GatherOp(OperatorPtr child, int dop)
      : child_(std::move(child)), dop_(dop) {}
  const Schema& schema() const override { return child_->schema(); }
  Status Open(ExecContext& ctx) override { return child_->Open(ctx); }
  Result<bool> Next(ExecContext& ctx, Row* out) override {
    return child_->Next(ctx, out);
  }
  Result<bool> NextBatch(ExecContext& ctx, Batch* out) override {
    return child_->NextBatch(ctx, out);
  }
  Status Close(ExecContext& ctx) override { return child_->Close(ctx); }
  std::string Describe() const override {
    return "Gather(dop=" + std::to_string(dop_) + ")";
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  int dop() const { return dop_; }

 private:
  OperatorPtr child_;
  int dop_;
};

}  // namespace aggify
