// Expression evaluation against a row frame + variable environment.
#pragma once

#include "exec/exec_context.h"
#include "parser/expr.h"

namespace aggify {

/// \brief Evaluates `expr` in `ctx`, resolving column references against
/// `ctx.frame()` (innermost first, then enclosing frames — correlated
/// subqueries), variables against `ctx.vars()`, scalar subqueries through
/// `ctx.ExecuteSubquery`, and scalar UDFs through `ctx.udf_invoker`.
///
/// AggregateCallExpr nodes are not evaluable here; the aggregation operators
/// strip them out before row-level evaluation. Hitting one is an internal
/// error (planner bug).
Result<Value> EvalExpr(const Expr& expr, ExecContext& ctx);

/// \brief Evaluates a predicate: NULL counts as false (SQL WHERE semantics).
Result<bool> EvalPredicate(const Expr& expr, ExecContext& ctx);

/// \brief Resolves and applies a built-in scalar function (ABS, UPPER,
/// COALESCE, DATEDIFF, ...). Errors: NotFound for unknown names.
Result<Value> ApplyScalarBuiltin(const std::string& name,
                                 const std::vector<Value>& args);

/// True if `name` is a built-in scalar function.
bool IsScalarBuiltinName(const std::string& name);

/// \brief True if evaluating `expr` can never re-enter the engine: no
/// scalar subqueries, no EXISTS, no IN (SELECT ...), and every function
/// call is a built-in evaluated inline. Only such expressions may be
/// evaluated on worker threads — the subquery executor and UDF invoker
/// hooks route through the single-threaded QueryEngine / interpreter.
bool ExprIsParallelSafe(const Expr& expr);

/// \brief Binds column references in `expr` against `schema`: sets
/// bound_index for names that resolve; leaves others untouched (they may
/// resolve against outer frames at eval time). Does not descend into
/// subqueries (their columns bind against their own plans).
void BindColumns(Expr* expr, const Schema& schema);

}  // namespace aggify
