// Expression evaluation against a row frame + variable environment.
#pragma once

#include "exec/exec_context.h"
#include "parser/expr.h"

namespace aggify {

/// \brief Evaluates `expr` in `ctx`, resolving column references against
/// `ctx.frame()` (innermost first, then enclosing frames — correlated
/// subqueries), variables against `ctx.vars()`, scalar subqueries through
/// `ctx.ExecuteSubquery`, and scalar UDFs through `ctx.udf_invoker`.
///
/// AggregateCallExpr nodes are not evaluable here; the aggregation operators
/// strip them out before row-level evaluation. Hitting one is an internal
/// error (planner bug).
Result<Value> EvalExpr(const Expr& expr, ExecContext& ctx);

/// \brief Evaluates a predicate: NULL counts as false (SQL WHERE semantics).
Result<bool> EvalPredicate(const Expr& expr, ExecContext& ctx);

/// \brief Resolves and applies a built-in scalar function (ABS, UPPER,
/// COALESCE, DATEDIFF, ...). Errors: NotFound for unknown names.
Result<Value> ApplyScalarBuiltin(const std::string& name,
                                 const std::vector<Value>& args);

/// True if `name` is a built-in scalar function.
bool IsScalarBuiltinName(const std::string& name);

/// \brief Binds column references in `expr` against `schema`: sets
/// bound_index for names that resolve; leaves others untouched (they may
/// resolve against outer frames at eval time). Does not descend into
/// subqueries (their columns bind against their own plans).
void BindColumns(Expr* expr, const Schema& schema);

}  // namespace aggify
