#include "exec/eval.h"

#include <cmath>
#include <unordered_map>

#include "common/string_util.h"

namespace aggify {

namespace {

Result<Value> ResolveColumn(const ColumnRefExpr& col, ExecContext& ctx) {
  const RowFrame* frame = ctx.frame();
  if (frame == nullptr) {
    return Status::BindError("column reference '" + col.name +
                             "' with no row context");
  }
  // Fast path: the planner bound this reference against the innermost
  // frame's schema.
  if (col.bound_index >= 0 && frame->schema != nullptr &&
      static_cast<size_t>(col.bound_index) < frame->schema->num_columns()) {
    return (*frame->row)[col.bound_index];
  }
  for (const RowFrame* f = frame; f != nullptr; f = f->parent) {
    if (f->schema == nullptr) continue;
    auto idx = f->schema->IndexOf(col.name);
    if (idx.ok()) return (*f->row)[*idx];
    if (idx.status().code() == StatusCode::kBindError) return idx.status();
  }
  return Status::BindError("cannot resolve column '" + col.name + "'");
}

Result<Value> EvalBinary(const BinaryExpr& bin, ExecContext& ctx) {
  // Short-circuiting Kleene connectives.
  if (bin.op == BinaryOp::kAnd) {
    ASSIGN_OR_RETURN(Value l, EvalExpr(*bin.left, ctx));
    if (!l.is_null() && l.is_bool() && !l.bool_value()) {
      return Value::Bool(false);
    }
    ASSIGN_OR_RETURN(Value r, EvalExpr(*bin.right, ctx));
    return And(l, r);
  }
  if (bin.op == BinaryOp::kOr) {
    ASSIGN_OR_RETURN(Value l, EvalExpr(*bin.left, ctx));
    if (!l.is_null() && l.is_bool() && l.bool_value()) {
      return Value::Bool(true);
    }
    ASSIGN_OR_RETURN(Value r, EvalExpr(*bin.right, ctx));
    return Or(l, r);
  }
  ASSIGN_OR_RETURN(Value l, EvalExpr(*bin.left, ctx));
  ASSIGN_OR_RETURN(Value r, EvalExpr(*bin.right, ctx));
  switch (bin.op) {
    case BinaryOp::kAdd: return Add(l, r);
    case BinaryOp::kSub: return Subtract(l, r);
    case BinaryOp::kMul: return Multiply(l, r);
    case BinaryOp::kDiv: return Divide(l, r);
    case BinaryOp::kMod: return Modulo(l, r);
    case BinaryOp::kEq: return Eq(l, r);
    case BinaryOp::kNe: return Ne(l, r);
    case BinaryOp::kLt: return Lt(l, r);
    case BinaryOp::kLe: return Le(l, r);
    case BinaryOp::kGt: return Gt(l, r);
    case BinaryOp::kGe: return Ge(l, r);
    case BinaryOp::kConcat: return Concat(l, r);
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      break;
  }
  return Status::Internal("unhandled binary operator");
}

}  // namespace

Result<Value> EvalExpr(const Expr& expr, ExecContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value;

    case ExprKind::kColumnRef:
      return ResolveColumn(static_cast<const ColumnRefExpr&>(expr), ctx);

    case ExprKind::kVarRef: {
      const auto& var = static_cast<const VarRefExpr&>(expr);
      if (ctx.vars() == nullptr) {
        return Status::BindError("variable reference '" + var.name +
                                 "' with no variable environment");
      }
      return ctx.vars()->Get(var.name);
    }

    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(expr);
      ASSIGN_OR_RETURN(Value v, EvalExpr(*un.operand, ctx));
      return un.op == UnaryOp::kNeg ? Negate(v) : Not(v);
    }

    case ExprKind::kBinary:
      return EvalBinary(static_cast<const BinaryExpr&>(expr), ctx);

    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      std::vector<Value> args;
      args.reserve(call.args.size());
      for (const auto& a : call.args) {
        ASSIGN_OR_RETURN(Value v, EvalExpr(*a, ctx));
        args.push_back(std::move(v));
      }
      if (IsScalarBuiltinName(call.name)) {
        return ApplyScalarBuiltin(call.name, args);
      }
      if (ctx.udf_invoker()) {
        return ctx.udf_invoker()(call.name, args, ctx);
      }
      return Status::NotFound("unknown function '" + call.name +
                              "' (no UDF invoker installed)");
    }

    case ExprKind::kAggregateCall:
      return Status::Internal(
          "aggregate call evaluated outside an aggregation operator: " +
          expr.ToString());

    case ExprKind::kScalarSubquery: {
      const auto& sub = static_cast<const ScalarSubqueryExpr&>(expr);
      ASSIGN_OR_RETURN(QueryResult result, ctx.ExecuteSubquery(*sub.query));
      return result.ScalarValue();
    }

    case ExprKind::kExists: {
      const auto& ex = static_cast<const ExistsExpr&>(expr);
      ASSIGN_OR_RETURN(QueryResult result, ctx.ExecuteSubquery(*ex.query));
      bool exists = !result.rows.empty();
      return Value::Bool(ex.negated ? !exists : exists);
    }

    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      ASSIGN_OR_RETURN(Value needle, EvalExpr(*in.operand, ctx));
      bool found = false;
      bool saw_null = false;
      if (in.subquery != nullptr) {
        ASSIGN_OR_RETURN(QueryResult result, ctx.ExecuteSubquery(*in.subquery));
        for (const Row& r : result.rows) {
          if (r.empty()) continue;
          ASSIGN_OR_RETURN(Value eq, Eq(needle, r[0]));
          if (eq.is_null()) {
            saw_null = true;
          } else if (eq.bool_value()) {
            found = true;
            break;
          }
        }
      } else {
        for (const auto& item : in.list) {
          ASSIGN_OR_RETURN(Value v, EvalExpr(*item, ctx));
          ASSIGN_OR_RETURN(Value eq, Eq(needle, v));
          if (eq.is_null()) {
            saw_null = true;
          } else if (eq.bool_value()) {
            found = true;
            break;
          }
        }
      }
      if (found) return Value::Bool(!in.negated);
      if (saw_null || needle.is_null()) return Value::Null();
      return Value::Bool(in.negated);
    }

    case ExprKind::kIsNull: {
      const auto& isn = static_cast<const IsNullExpr&>(expr);
      ASSIGN_OR_RETURN(Value v, EvalExpr(*isn.operand, ctx));
      return Value::Bool(isn.negated ? !v.is_null() : v.is_null());
    }

    case ExprKind::kCaseWhen: {
      const auto& cw = static_cast<const CaseWhenExpr&>(expr);
      for (const auto& arm : cw.arms) {
        ASSIGN_OR_RETURN(bool cond, EvalPredicate(*arm.condition, ctx));
        if (cond) return EvalExpr(*arm.result, ctx);
      }
      if (cw.else_result != nullptr) return EvalExpr(*cw.else_result, ctx);
      return Value::Null();
    }

    case ExprKind::kCast: {
      const auto& cast = static_cast<const CastExpr&>(expr);
      ASSIGN_OR_RETURN(Value v, EvalExpr(*cast.operand, ctx));
      return v.CastTo(cast.target.id);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvalPredicate(const Expr& expr, ExecContext& ctx) {
  ASSIGN_OR_RETURN(Value v, EvalExpr(expr, ctx));
  if (v.is_null()) return false;
  if (v.is_bool()) return v.bool_value();
  if (v.is_numeric()) return v.AsDouble() != 0.0;
  return Status::TypeError("predicate evaluated to non-boolean: " +
                           v.ToString());
}

// ---------- scalar builtins ----------

namespace {

Status WrongArity(const std::string& name, size_t got, const char* want) {
  return Status::ExecutionError("function " + name + " expects " + want +
                                " argument(s), got " + std::to_string(got));
}

}  // namespace

bool IsScalarBuiltinName(const std::string& name) {
  static const std::unordered_map<std::string, int>* kNames = [] {
    auto* m = new std::unordered_map<std::string, int>{
        {"abs", 1},      {"power", 2},   {"round", 2},    {"floor", 1},
        {"ceiling", 1},  {"sqrt", 1},    {"exp", 1},      {"log", 1},
        {"upper", 1},    {"lower", 1},   {"len", 1},      {"substring", 3},
        {"ltrim", 1},    {"rtrim", 1},   {"coalesce", -1}, {"isnull", 2},
        {"nullif", 2},   {"sign", 1},    {"year", 1},     {"month", 1},
        {"day", 1},      {"datediff_day", 2}, {"dateadd_day", 2},
        {"charindex", 2}, {"replicate", 2}, {"like", 2},
    };
    return m;
  }();
  return kNames->count(ToLower(name)) != 0;
}

Result<Value> ApplyScalarBuiltin(const std::string& raw_name,
                                 const std::vector<Value>& args) {
  std::string name = ToLower(raw_name);

  auto need = [&](size_t n, const char* w) -> Status {
    if (args.size() != n) return WrongArity(name, args.size(), w);
    return Status::OK();
  };

  if (name == "coalesce") {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  if (name == "isnull") {
    RETURN_NOT_OK(need(2, "2"));
    return args[0].is_null() ? args[1] : args[0];
  }
  if (name == "nullif") {
    RETURN_NOT_OK(need(2, "2"));
    ASSIGN_OR_RETURN(Value eq, Eq(args[0], args[1]));
    if (!eq.is_null() && eq.bool_value()) return Value::Null();
    return args[0];
  }

  // Remaining functions: NULL in propagates NULL out.
  for (const Value& v : args) {
    if (v.is_null()) return Value::Null();
  }

  if (name == "abs") {
    RETURN_NOT_OK(need(1, "1"));
    if (args[0].is_int()) return Value::Int(std::llabs(args[0].int_value()));
    if (args[0].is_double()) return Value::Double(std::fabs(args[0].double_value()));
    return Status::TypeError("abs over non-numeric value");
  }
  if (name == "sign") {
    RETURN_NOT_OK(need(1, "1"));
    if (!args[0].is_numeric()) return Status::TypeError("sign over non-numeric");
    double d = args[0].AsDouble();
    return Value::Int(d > 0 ? 1 : (d < 0 ? -1 : 0));
  }
  if (name == "power") {
    RETURN_NOT_OK(need(2, "2"));
    if (!args[0].is_numeric() || !args[1].is_numeric()) {
      return Status::TypeError("power over non-numeric");
    }
    return Value::Double(std::pow(args[0].AsDouble(), args[1].AsDouble()));
  }
  if (name == "round") {
    RETURN_NOT_OK(need(2, "2"));
    if (!args[0].is_numeric() || !args[1].is_int()) {
      return Status::TypeError("round(x, digits) type mismatch");
    }
    double scale = std::pow(10.0, static_cast<double>(args[1].int_value()));
    return Value::Double(std::round(args[0].AsDouble() * scale) / scale);
  }
  if (name == "floor") {
    RETURN_NOT_OK(need(1, "1"));
    return Value::Double(std::floor(args[0].AsDouble()));
  }
  if (name == "ceiling") {
    RETURN_NOT_OK(need(1, "1"));
    return Value::Double(std::ceil(args[0].AsDouble()));
  }
  if (name == "sqrt") {
    RETURN_NOT_OK(need(1, "1"));
    return Value::Double(std::sqrt(args[0].AsDouble()));
  }
  if (name == "exp") {
    RETURN_NOT_OK(need(1, "1"));
    return Value::Double(std::exp(args[0].AsDouble()));
  }
  if (name == "log") {
    RETURN_NOT_OK(need(1, "1"));
    return Value::Double(std::log(args[0].AsDouble()));
  }
  if (name == "upper" || name == "lower") {
    RETURN_NOT_OK(need(1, "1"));
    ASSIGN_OR_RETURN(Value s, args[0].CastTo(TypeId::kString));
    return Value::String(name == "upper" ? ToUpper(s.string_value())
                                         : ToLower(s.string_value()));
  }
  if (name == "len") {
    RETURN_NOT_OK(need(1, "1"));
    ASSIGN_OR_RETURN(Value s, args[0].CastTo(TypeId::kString));
    return Value::Int(static_cast<int64_t>(s.string_value().size()));
  }
  if (name == "ltrim" || name == "rtrim") {
    RETURN_NOT_OK(need(1, "1"));
    ASSIGN_OR_RETURN(Value sv, args[0].CastTo(TypeId::kString));
    std::string s = sv.string_value();
    if (name == "ltrim") {
      size_t b = s.find_first_not_of(' ');
      return Value::String(b == std::string::npos ? "" : s.substr(b));
    }
    size_t e = s.find_last_not_of(' ');
    return Value::String(e == std::string::npos ? "" : s.substr(0, e + 1));
  }
  if (name == "substring") {
    RETURN_NOT_OK(need(3, "3"));
    ASSIGN_OR_RETURN(Value sv, args[0].CastTo(TypeId::kString));
    if (!args[1].is_int() || !args[2].is_int()) {
      return Status::TypeError("substring(s, start, len) type mismatch");
    }
    const std::string& s = sv.string_value();
    int64_t start = args[1].int_value() - 1;  // 1-based like T-SQL
    int64_t len = args[2].int_value();
    if (start < 0) start = 0;
    if (start >= static_cast<int64_t>(s.size()) || len <= 0) {
      return Value::String("");
    }
    return Value::String(s.substr(static_cast<size_t>(start),
                                  static_cast<size_t>(len)));
  }
  if (name == "like") {
    RETURN_NOT_OK(need(2, "2"));
    ASSIGN_OR_RETURN(Value sv, args[0].CastTo(TypeId::kString));
    ASSIGN_OR_RETURN(Value pv, args[1].CastTo(TypeId::kString));
    const std::string& s = sv.string_value();
    const std::string& p = pv.string_value();
    // SQL LIKE: '%' matches any run, '_' any single char. Iterative matcher
    // with backtracking over the last '%'.
    size_t si = 0, pi = 0;
    size_t star_p = std::string::npos, star_s = 0;
    while (si < s.size()) {
      if (pi < p.size() && (p[pi] == '_' || p[pi] == s[si])) {
        ++si;
        ++pi;
      } else if (pi < p.size() && p[pi] == '%') {
        star_p = pi++;
        star_s = si;
      } else if (star_p != std::string::npos) {
        pi = star_p + 1;
        si = ++star_s;
      } else {
        return Value::Bool(false);
      }
    }
    while (pi < p.size() && p[pi] == '%') ++pi;
    return Value::Bool(pi == p.size());
  }
  if (name == "charindex") {
    RETURN_NOT_OK(need(2, "2"));
    ASSIGN_OR_RETURN(Value pat, args[0].CastTo(TypeId::kString));
    ASSIGN_OR_RETURN(Value s, args[1].CastTo(TypeId::kString));
    size_t pos = s.string_value().find(pat.string_value());
    return Value::Int(pos == std::string::npos
                          ? 0
                          : static_cast<int64_t>(pos) + 1);
  }
  if (name == "replicate") {
    RETURN_NOT_OK(need(2, "2"));
    ASSIGN_OR_RETURN(Value s, args[0].CastTo(TypeId::kString));
    if (!args[1].is_int()) return Status::TypeError("replicate count");
    std::string out;
    for (int64_t i = 0; i < args[1].int_value(); ++i) out += s.string_value();
    return Value::String(out);
  }
  if (name == "year" || name == "month" || name == "day") {
    RETURN_NOT_OK(need(1, "1"));
    ASSIGN_OR_RETURN(Value d, args[0].CastTo(TypeId::kDate));
    std::string s = DateToString(d.date_value());  // YYYY-MM-DD
    if (name == "year") return Value::Int(std::stoll(s.substr(0, 4)));
    if (name == "month") return Value::Int(std::stoll(s.substr(5, 2)));
    return Value::Int(std::stoll(s.substr(8, 2)));
  }
  if (name == "datediff_day") {
    RETURN_NOT_OK(need(2, "2"));
    ASSIGN_OR_RETURN(Value a, args[0].CastTo(TypeId::kDate));
    ASSIGN_OR_RETURN(Value b, args[1].CastTo(TypeId::kDate));
    return Value::Int(b.date_value().days - a.date_value().days);
  }
  if (name == "dateadd_day") {
    RETURN_NOT_OK(need(2, "2"));
    ASSIGN_OR_RETURN(Value d, args[0].CastTo(TypeId::kDate));
    if (!args[1].is_int()) return Status::TypeError("dateadd_day count");
    return Value::FromDate(
        Date{d.date_value().days + static_cast<int32_t>(args[1].int_value())});
  }
  return Status::NotFound("unknown scalar builtin '" + name + "'");
}

bool ExprIsParallelSafe(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kScalarSubquery:
    case ExprKind::kExists:
      return false;  // ExecuteSubquery → QueryEngine → plan cache
    case ExprKind::kInList:
      if (static_cast<const InListExpr&>(expr).subquery != nullptr) {
        return false;
      }
      break;
    case ExprKind::kFunctionCall:
      // Built-ins are applied inline; anything else goes through the
      // udf_invoker hook into the single-threaded interpreter.
      if (!IsScalarBuiltinName(
              static_cast<const FunctionCallExpr&>(expr).name)) {
        return false;
      }
      break;
    default:
      break;
  }
  for (const Expr* child : expr.Children()) {
    if (child != nullptr && !ExprIsParallelSafe(*child)) return false;
  }
  return true;
}

void BindColumns(Expr* expr, const Schema& schema) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kColumnRef) {
    auto* col = static_cast<ColumnRefExpr*>(expr);
    auto idx = schema.IndexOf(col->name);
    col->bound_index = idx.ok() ? static_cast<int>(*idx) : -1;
    return;
  }
  for (Expr* child : expr->MutableChildren()) BindColumns(child, schema);
}

}  // namespace aggify
