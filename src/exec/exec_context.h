// ExecContext: everything one query/program execution needs to reach —
// the database, the procedural variable environment, correlated outer rows,
// CTE bindings, and late-bound hooks for subquery execution and scalar UDF
// invocation (installed by higher layers; keeps the module graph acyclic).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/result.h"
#include "storage/catalog.h"
#include "types/schema.h"

namespace aggify {

struct SelectStmt;

/// \brief Scoped variable bindings (@x -> Value) with lexical parent chain.
class VariableEnv {
 public:
  explicit VariableEnv(VariableEnv* parent = nullptr) : parent_(parent) {}

  /// Declares (or shadows) a variable in this scope.
  void Declare(const std::string& name, Value v) {
    vars_[name] = std::move(v);
  }

  /// Assigns an existing variable, searching enclosing scopes.
  /// Errors: NotFound if never declared.
  Status Set(const std::string& name, Value v);

  /// Reads a variable, searching enclosing scopes. Errors: NotFound.
  Result<Value> Get(const std::string& name) const;

  bool Has(const std::string& name) const;

  /// Names declared in this scope only (not parents).
  std::vector<std::string> LocalNames() const;

 private:
  std::map<std::string, Value> vars_;
  VariableEnv* parent_;
};

/// \brief A frame of correlated evaluation: the current row of some operator
/// plus its schema, chained to enclosing query frames for correlated
/// subqueries.
struct RowFrame {
  const Row* row = nullptr;
  const Schema* schema = nullptr;
  const RowFrame* parent = nullptr;
};

/// \brief A fully materialized query result.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;

  /// The single value of a scalar result (first column of first row);
  /// NULL for an empty result. Errors: ExecutionError if more than one row.
  Result<Value> ScalarValue() const;
};

/// \brief Named materialized rowsets visible to CTE scans during execution.
struct CteBinding {
  Schema schema;
  const std::vector<Row>* rows;
};

class ExecContext {
 public:
  explicit ExecContext(Database* db) : db_(db) {}

  Database* db() const { return db_; }
  Catalog& catalog() const { return db_->catalog(); }
  IoStats& stats() const {
    return stats_override_ != nullptr ? *stats_override_ : db_->stats();
  }
  /// Redirects stats() to a private counter set. Parallel workers execute
  /// on a context copy with an override so they never race on the shared
  /// Database counters; the coordinator merges after joining.
  void set_stats_override(IoStats* stats) { stats_override_ = stats; }
  RobustnessStats& robustness() const { return db_->robustness(); }

  // --- query governance (docs/ROBUSTNESS.md) ---
  /// The governing QueryContext, or nullptr when execution is unbounded.
  /// Non-owning: installed by QueryEngine::Execute or a Session entry point,
  /// whose stack frame outlives every operator and joined worker.
  QueryContext* query_context() const { return query_ctx_; }
  void set_query_context(QueryContext* qc) { query_ctx_ = qc; }
  /// The cooperative interrupt poll: kCancelled / kTimeout when the
  /// governing context says stop, OK otherwise (including when ungoverned).
  /// Called at morsel / batch / FETCH granularity — cheap enough for that,
  /// too hot for per-row use (callers stride it).
  Status CheckInterrupts() const {
    return query_ctx_ == nullptr ? Status::OK() : query_ctx_->Check();
  }
  /// The memory accountant of the governing context, or nullptr.
  MemoryAccountant* accountant() const {
    return query_ctx_ == nullptr ? nullptr : query_ctx_->accountant();
  }

  VariableEnv* vars() const { return vars_; }
  void set_vars(VariableEnv* v) { vars_ = v; }

  const RowFrame* frame() const { return frame_; }
  void set_frame(const RowFrame* f) { frame_ = f; }

  // --- CTE bindings (scoped per query execution) ---
  void BindCte(const std::string& name, CteBinding binding) {
    ctes_[name] = binding;
  }
  void UnbindCte(const std::string& name) { ctes_.erase(name); }
  const CteBinding* FindCte(const std::string& name) const {
    auto it = ctes_.find(name);
    return it == ctes_.end() ? nullptr : &it->second;
  }
  bool HasCteBindings() const { return !ctes_.empty(); }

  // --- late-bound hooks ---
  using SubqueryExecutor =
      std::function<Result<QueryResult>(const SelectStmt&, ExecContext&)>;
  using UdfInvoker = std::function<Result<Value>(
      const std::string& name, const std::vector<Value>& args, ExecContext&)>;

  const SubqueryExecutor& subquery_executor() const { return subquery_exec_; }
  void set_subquery_executor(SubqueryExecutor fn) {
    subquery_exec_ = std::move(fn);
  }

  const UdfInvoker& udf_invoker() const { return udf_invoker_; }
  void set_udf_invoker(UdfInvoker fn) { udf_invoker_ = std::move(fn); }

  /// Executes a nested SELECT with this context. Errors: Internal if no
  /// subquery executor was installed.
  Result<QueryResult> ExecuteSubquery(const SelectStmt& stmt);

  /// \brief Child context sharing hooks/db but with its own frame.
  /// Used when evaluating correlated subqueries.
  ExecContext WithFrame(const RowFrame* f) const {
    ExecContext child = *this;
    child.frame_ = f;
    return child;
  }

  /// \brief RAII frame swap for per-row expression evaluation: cheaper than
  /// copying the context in operator inner loops, restores on destruction.
  class FrameScope {
   public:
    FrameScope(ExecContext* ctx, const RowFrame* frame)
        : ctx_(ctx), saved_(ctx->frame()) {
      ctx_->set_frame(frame);
    }
    ~FrameScope() { ctx_->set_frame(saved_); }
    FrameScope(const FrameScope&) = delete;
    FrameScope& operator=(const FrameScope&) = delete;

   private:
    ExecContext* ctx_;
    const RowFrame* saved_;
  };

  // --- recursion/iteration guards ---
  int depth = 0;
  static constexpr int kMaxDepth = 128;
  /// Max iterations of a recursive CTE before erroring (runaway guard).
  int64_t max_recursion = 10'000'000;

 private:
  Database* db_;
  VariableEnv* vars_ = nullptr;
  const RowFrame* frame_ = nullptr;
  std::map<std::string, CteBinding> ctes_;
  SubqueryExecutor subquery_exec_;
  UdfInvoker udf_invoker_;
  IoStats* stats_override_ = nullptr;
  QueryContext* query_ctx_ = nullptr;
};

}  // namespace aggify
