// Vectorized operator paths: the row->batch adapter on Operator, the batch
// filter/projection overrides, and the shared batch-pipeline helpers
// (batch_pipeline.h). See docs/VECTORIZATION.md for the execution model and
// the equivalence obligations.
#include <utility>

#include "exec/batch_pipeline.h"
#include "exec/eval.h"
#include "exec/operators.h"

namespace aggify {

// ---- Default adapter: any operator produces batches by pulling Next() ----

Result<bool> Operator::NextBatch(ExecContext& ctx, Batch* out) {
  std::vector<Row> rows;
  Row row;
  for (int64_t i = 0; i < kDefaultBatchRows; ++i) {
    ASSIGN_OR_RETURN(bool more, Next(ctx, &row));
    if (!more) break;
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return false;
  const size_t ncols = schema().num_columns();
  out->Reset(ncols);
  out->num_rows = static_cast<int64_t>(rows.size());
  for (size_t c = 0; c < ncols; ++c) {
    out->columns.push_back(
        ColumnVector::FromRows(rows.data(), out->num_rows, c));
  }
  return true;
}

// ---- Batch-pipeline helpers -----------------------------------------------

namespace {

// Conjunction split; false for anything but a pure AND tree of leaves.
void SplitConjunctsInto(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(e);
    if (b.op == BinaryOp::kAnd) {
      SplitConjunctsInto(*b.left, out);
      SplitConjunctsInto(*b.right, out);
      return;
    }
  }
  out->push_back(&e);
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

BinaryOp MirrorComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

const ColumnRefExpr* AsBoundColRef(const Expr& e, const Schema& schema) {
  if (e.kind != ExprKind::kColumnRef) return nullptr;
  const auto& c = static_cast<const ColumnRefExpr&>(e);
  if (c.bound_index < 0 ||
      c.bound_index >= static_cast<int>(schema.num_columns())) {
    return nullptr;
  }
  return &c;
}

// A constant side: no column references anywhere (so its value cannot vary
// per row) and engine-safe (no subqueries/UDFs — those are re-executed per
// row by the interpreter, which is observable in IoStats).
bool IsRowInvariant(const Expr& e) {
  std::vector<std::string> refs;
  CollectColumnRefs(e, &refs);
  return refs.empty() && ExprIsParallelSafe(e);
}

// One row's numeric value out of a typed column; false when NULL.
inline bool TypedAt(const ColumnVector& col, int64_t i, bool* is_int,
                    int64_t* iv, double* dv) {
  if (!col.validity().IsValid(i)) return false;
  if (col.tag() == ColumnVector::Tag::kInt64) {
    *is_int = true;
    *iv = col.i64()[static_cast<size_t>(i)];
  } else {
    *is_int = false;
    *dv = col.f64()[static_cast<size_t>(i)];
  }
  return true;
}

// Mirrors Compare() for numeric pairs: both-int compares exactly, mixed
// compares as double (ints widen like Value::AsDouble).
inline int NumericCompare(bool a_int, int64_t ai, double ad, bool b_int,
                          int64_t bi, double bd) {
  if (a_int && b_int) return ai < bi ? -1 : (ai > bi ? 1 : 0);
  const double a = a_int ? static_cast<double>(ai) : ad;
  const double b = b_int ? static_cast<double>(bi) : bd;
  return a < b ? -1 : (a > b ? 1 : 0);
}

inline bool CompareKeeps(int cmp, BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return cmp == 0;
    case BinaryOp::kNe: return cmp != 0;
    case BinaryOp::kLt: return cmp < 0;
    case BinaryOp::kLe: return cmp <= 0;
    case BinaryOp::kGt: return cmp > 0;
    case BinaryOp::kGe: return cmp >= 0;
    default: return false;
  }
}

}  // namespace

CompiledPredicate CompileBatchPredicate(const Expr& pred, const Schema& schema,
                                        ExecContext& ctx) {
  CompiledPredicate out;
  std::vector<const Expr*> leaves;
  SplitConjunctsInto(pred, &leaves);
  for (const Expr* leaf : leaves) {
    if (leaf->kind != ExprKind::kBinary) return out;  // ok stays false
    const auto& b = static_cast<const BinaryExpr&>(*leaf);
    if (!IsComparison(b.op)) return out;
    const ColumnRefExpr* lhs = AsBoundColRef(*b.left, schema);
    const ColumnRefExpr* rhs = AsBoundColRef(*b.right, schema);
    CompiledConjunct cj;
    if (lhs != nullptr && rhs != nullptr) {
      cj.lhs_col = lhs->bound_index;
      cj.op = b.op;
      cj.rhs_is_col = true;
      cj.rhs_col = rhs->bound_index;
    } else if (lhs != nullptr && IsRowInvariant(*b.right)) {
      auto v = EvalExpr(*b.right, ctx);
      if (!v.ok()) return out;  // the row path surfaces the error
      cj.lhs_col = lhs->bound_index;
      cj.op = b.op;
      cj.rhs_const = std::move(*v);
    } else if (rhs != nullptr && IsRowInvariant(*b.left)) {
      auto v = EvalExpr(*b.left, ctx);
      if (!v.ok()) return out;
      cj.lhs_col = rhs->bound_index;
      cj.op = MirrorComparison(b.op);  // const <cmp> col, flipped
      cj.rhs_const = std::move(*v);
    } else {
      return out;
    }
    out.conjuncts.push_back(std::move(cj));
  }
  out.ok = true;
  return out;
}

bool ApplyCompiledPredicate(const CompiledPredicate& pred, Batch* batch) {
  if (!pred.ok) return false;
  // Kernel applicability check first, so a defeated batch is left untouched
  // for the row-at-a-time fallback.
  for (const CompiledConjunct& cj : pred.conjuncts) {
    if (batch->columns[static_cast<size_t>(cj.lhs_col)].tag() ==
        ColumnVector::Tag::kGeneric) {
      return false;
    }
    if (cj.rhs_is_col) {
      if (batch->columns[static_cast<size_t>(cj.rhs_col)].tag() ==
          ColumnVector::Tag::kGeneric) {
        return false;
      }
    } else if (!cj.rhs_const.is_null() && !cj.rhs_const.is_numeric()) {
      // Comparing a numeric column to a non-numeric constant is a type
      // error in the row path; fall back so it surfaces identically.
      return false;
    }
  }
  std::vector<int32_t> kept;
  const int64_t count = batch->SelectedCount();
  kept.reserve(static_cast<size_t>(count));
  for (const CompiledConjunct& cj : pred.conjuncts) {
    kept.clear();
    if (!cj.rhs_is_col && cj.rhs_const.is_null()) {
      // NULL comparand: the comparison is NULL for every row, and WHERE
      // drops NULL — the conjunction keeps nothing.
      batch->selection.clear();
      batch->has_selection = true;
      return true;
    }
    const ColumnVector& lhs = batch->columns[static_cast<size_t>(cj.lhs_col)];
    const bool rc_int = !cj.rhs_is_col && cj.rhs_const.is_int();
    const int64_t rc_i = rc_int ? cj.rhs_const.int_value() : 0;
    const double rc_d =
        !cj.rhs_is_col && cj.rhs_const.is_double() ? cj.rhs_const.double_value()
                                                   : 0.0;
    const ColumnVector* rhs_col =
        cj.rhs_is_col ? &batch->columns[static_cast<size_t>(cj.rhs_col)]
                      : nullptr;
    const int64_t n = batch->SelectedCount();
    for (int64_t k = 0; k < n; ++k) {
      const int64_t i = batch->RowIndex(k);
      bool li = false;
      int64_t liv = 0;
      double ldv = 0.0;
      if (!TypedAt(lhs, i, &li, &liv, &ldv)) continue;  // NULL drops
      bool ri = rc_int;
      int64_t riv = rc_i;
      double rdv = rc_d;
      if (rhs_col != nullptr && !TypedAt(*rhs_col, i, &ri, &riv, &rdv)) {
        continue;
      }
      if (CompareKeeps(NumericCompare(li, liv, ldv, ri, riv, rdv), cj.op)) {
        kept.push_back(static_cast<int32_t>(i));
      }
    }
    batch->selection = kept;
    batch->has_selection = true;
    if (batch->selection.empty()) return true;
  }
  return true;
}

Status FilterBatchRowwise(const Expr& pred, const Schema& schema,
                          ExecContext& ctx, Batch* batch) {
  std::vector<int32_t> kept;
  const int64_t n = batch->SelectedCount();
  kept.reserve(static_cast<size_t>(n));
  Row row;
  for (int64_t k = 0; k < n; ++k) {
    const int64_t i = batch->RowIndex(k);
    batch->MaterializeRow(i, &row);
    RowFrame frame{&row, &schema, ctx.frame()};
    ExecContext::FrameScope scope(&ctx, &frame);
    ASSIGN_OR_RETURN(bool keep, EvalPredicate(pred, ctx));
    if (keep) kept.push_back(static_cast<int32_t>(i));
  }
  batch->selection = std::move(kept);
  batch->has_selection = true;
  return Status::OK();
}

bool AllBoundColumnRefs(const std::vector<ExprPtr>& exprs,
                        std::vector<int>* cols) {
  cols->clear();
  cols->reserve(exprs.size());
  for (const ExprPtr& e : exprs) {
    if (e == nullptr || e->kind != ExprKind::kColumnRef) return false;
    const auto& c = static_cast<const ColumnRefExpr&>(*e);
    if (c.bound_index < 0) return false;
    cols->push_back(c.bound_index);
  }
  return true;
}

void ProjectBatchColumns(const std::vector<int>& cols, Batch* batch) {
  std::vector<ColumnVector> out;
  out.reserve(cols.size());
  for (int c : cols) out.push_back(batch->columns[static_cast<size_t>(c)]);
  batch->columns = std::move(out);
}

Status ProjectBatchRowwise(const std::vector<ExprPtr>& exprs,
                           const Schema& in_schema, ExecContext& ctx,
                           Batch* batch) {
  const int64_t n = batch->SelectedCount();
  std::vector<Row> out_rows;
  out_rows.reserve(static_cast<size_t>(n));
  Row row;
  for (int64_t k = 0; k < n; ++k) {
    batch->MaterializeRow(batch->RowIndex(k), &row);
    RowFrame frame{&row, &in_schema, ctx.frame()};
    ExecContext::FrameScope scope(&ctx, &frame);
    Row projected;
    projected.reserve(exprs.size());
    for (const ExprPtr& e : exprs) {
      ASSIGN_OR_RETURN(Value v, EvalExpr(*e, ctx));
      projected.push_back(std::move(v));
    }
    out_rows.push_back(std::move(projected));
  }
  batch->Reset(exprs.size());
  batch->num_rows = static_cast<int64_t>(out_rows.size());
  for (size_t c = 0; c < exprs.size(); ++c) {
    batch->columns.push_back(
        ColumnVector::FromRows(out_rows.data(), batch->num_rows, c));
  }
  return Status::OK();
}

// ---- FilterOp / ProjectOp batch overrides ---------------------------------

Result<bool> FilterOp::NextBatch(ExecContext& ctx, Batch* out) {
  for (;;) {
    ASSIGN_OR_RETURN(bool more, child_->NextBatch(ctx, out));
    if (!more) return false;
    if (out->SelectedCount() == 0) continue;
    if (compiled_ == nullptr) {
      compiled_ = std::make_shared<CompiledPredicate>(
          CompileBatchPredicate(*predicate_, child_->schema(), ctx));
    }
    if (!ApplyCompiledPredicate(*compiled_, out)) {
      RETURN_NOT_OK(FilterBatchRowwise(*predicate_, child_->schema(), ctx,
                                       out));
    }
    if (out->SelectedCount() > 0) return true;
  }
}

Result<bool> ProjectOp::NextBatch(ExecContext& ctx, Batch* out) {
  for (;;) {
    ASSIGN_OR_RETURN(bool more, child_->NextBatch(ctx, out));
    if (!more) return false;
    if (out->SelectedCount() == 0) continue;
    if (batch_mode_ == BatchMode::kUnknown) {
      batch_mode_ = AllBoundColumnRefs(exprs_, &batch_cols_)
                        ? BatchMode::kColumnShuffle
                        : BatchMode::kRowwise;
    }
    if (batch_mode_ == BatchMode::kColumnShuffle) {
      ProjectBatchColumns(batch_cols_, out);
    } else {
      RETURN_NOT_OK(ProjectBatchRowwise(exprs_, child_->schema(), ctx, out));
    }
    return true;
  }
}

}  // namespace aggify
