// Aggregation operators: HashAggregate and StreamAggregate.
//
// Both drive the §3.1 contract. StreamAggregate is the operator Eq. 6
// forces under ORDER BY cursor rewrites: it consumes its input in order and
// calls Accumulate in exactly that order, which is what makes order-sensitive
// synthesized aggregates correct.
#include "common/failpoint.h"
#include "exec/batch.h"
#include "exec/batch_pipeline.h"
#include "exec/eval.h"
#include "exec/operators.h"

namespace aggify {

Status AccumulateInto(const AggregateSpec& spec, AggregateState* state,
                      const Row& row, const Schema& in_schema,
                      ExecContext& ctx) {
  AGGIFY_FAILPOINT("exec.agg.accumulate");
  RowFrame frame{&row, &in_schema, ctx.frame()};
  ExecContext::FrameScope scope(&ctx, &frame);
  std::vector<Value> args;
  args.reserve(spec.args.size());
  for (const auto& a : spec.args) {
    ASSIGN_OR_RETURN(Value v, EvalExpr(*a, ctx));
    args.push_back(std::move(v));
  }
  return spec.function->Accumulate(state, args, &ctx);
}

Status AccumulateBatchInto(const AggregateSpec& spec,
                           const std::vector<int>& arg_cols,
                           AggregateState* state, const Batch& batch,
                           const int32_t* sel, int64_t count,
                           ExecContext& ctx) {
  AGGIFY_FAILPOINT("exec.agg.accumulate");
  std::vector<const ColumnVector*> cols;
  cols.reserve(arg_cols.size());
  for (int c : arg_cols) {
    cols.push_back(&batch.columns[static_cast<size_t>(c)]);
  }
  return spec.function->AccumulateBatch(state, cols, sel, count, &ctx);
}

namespace {

Result<Row> EvalGroupKey(const std::vector<ExprPtr>& group_exprs,
                         const Row& row, const Schema& in_schema,
                         ExecContext& ctx) {
  RowFrame frame{&row, &in_schema, ctx.frame()};
  ExecContext::FrameScope scope(&ctx, &frame);
  Row key;
  key.reserve(group_exprs.size());
  for (const auto& g : group_exprs) {
    ASSIGN_OR_RETURN(Value v, EvalExpr(*g, ctx));
    key.push_back(std::move(v));
  }
  return key;
}

}  // namespace

// ---- HashAggregateOp ----

HashAggregateOp::HashAggregateOp(OperatorPtr child,
                                 std::vector<ExprPtr> group_exprs,
                                 std::vector<AggregateSpec> aggs,
                                 Schema out_schema)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)),
      schema_(std::move(out_schema)) {}

namespace {

Result<std::vector<std::unique_ptr<AggregateState>>> InitStates(
    const std::vector<AggregateSpec>& aggs) {
  std::vector<std::unique_ptr<AggregateState>> states;
  states.reserve(aggs.size());
  for (const auto& spec : aggs) {
    ASSIGN_OR_RETURN(auto state, spec.function->Init());
    states.push_back(std::move(state));
  }
  return states;
}

}  // namespace

bool HashAggregateOp::PrepareBatchBindings() {
  agg_arg_cols_.clear();
  group_cols_.clear();
  const int ncols = static_cast<int>(child_->schema().num_columns());
  auto in_range = [ncols](const std::vector<int>& cols) {
    for (int c : cols) {
      if (c >= ncols) return false;
    }
    return true;
  };
  if (!AllBoundColumnRefs(group_exprs_, &group_cols_) ||
      !in_range(group_cols_)) {
    return false;
  }
  for (const auto& spec : aggs_) {
    std::vector<int> cols;
    if (!AllBoundColumnRefs(spec.args, &cols) || !in_range(cols)) return false;
    agg_arg_cols_.push_back(std::move(cols));
  }
  return true;
}

Status HashAggregateOp::OpenBatch(ExecContext& ctx) {
  RETURN_NOT_OK(child_->Open(ctx));
  Batch batch;
  // key -> index into group_keys_; per-group selection vectors, cleared
  // after each batch (batch-local row indices).
  std::unordered_map<Row, size_t, RowHash, RowEq> ordinals;
  std::vector<std::vector<int32_t>> gsel;
  std::vector<size_t> touched;
  for (;;) {
    ASSIGN_OR_RETURN(bool more, child_->NextBatch(ctx, &batch));
    if (!more) break;
    const int64_t n = batch.SelectedCount();
    if (n == 0) continue;
    if (group_exprs_.empty()) {
      if (group_keys_.empty()) {
        ASSIGN_OR_RETURN(auto states, InitStates(aggs_));
        groups_.emplace(Row(), std::move(states));
        group_keys_.emplace_back();
        if (MemoryAccountant* acc = ctx.accountant()) {
          const int64_t bytes = EstimateGroupBytes(Row(), aggs_.size());
          RETURN_NOT_OK(acc->TryCharge(bytes));
          charged_ += bytes;
        }
      }
      GroupStates& states = groups_.find(group_keys_[0])->second;
      for (size_t i = 0; i < aggs_.size(); ++i) {
        RETURN_NOT_OK(AccumulateBatchInto(aggs_[i], agg_arg_cols_[i],
                                          states[i].get(), batch,
                                          batch.SelectionData(), n, ctx));
      }
      continue;
    }
    // Grouped: bucket batch-local row indices per group (first-seen group
    // order, rows ascending within each group — exactly the per-state
    // accumulate order of the row loop), then fold each touched group.
    touched.clear();
    Row key;
    for (int64_t k = 0; k < n; ++k) {
      const int64_t i = batch.RowIndex(k);
      key.clear();
      key.reserve(group_cols_.size());
      for (int c : group_cols_) {
        key.push_back(batch.columns[static_cast<size_t>(c)].GetValue(i));
      }
      size_t ord;
      auto it = ordinals.find(key);
      if (it == ordinals.end()) {
        ord = group_keys_.size();
        ordinals.emplace(key, ord);
        ASSIGN_OR_RETURN(auto states, InitStates(aggs_));
        groups_.emplace(key, std::move(states));
        group_keys_.push_back(key);
        gsel.emplace_back();
        if (MemoryAccountant* acc = ctx.accountant()) {
          const int64_t bytes = EstimateGroupBytes(key, aggs_.size());
          RETURN_NOT_OK(acc->TryCharge(bytes));
          charged_ += bytes;
        }
      } else {
        ord = it->second;
      }
      if (gsel[ord].empty()) touched.push_back(ord);
      gsel[ord].push_back(static_cast<int32_t>(i));
    }
    for (size_t ord : touched) {
      GroupStates& states = groups_.find(group_keys_[ord])->second;
      for (size_t i = 0; i < aggs_.size(); ++i) {
        RETURN_NOT_OK(AccumulateBatchInto(
            aggs_[i], agg_arg_cols_[i], states[i].get(), batch,
            gsel[ord].data(), static_cast<int64_t>(gsel[ord].size()), ctx));
      }
      gsel[ord].clear();
    }
  }
  RETURN_NOT_OK(child_->Close(ctx));
  // Scalar aggregate over empty input still emits one row.
  if (group_exprs_.empty() && groups_.empty()) {
    ASSIGN_OR_RETURN(auto states, InitStates(aggs_));
    Row key;  // empty
    groups_.emplace(key, std::move(states));
    group_keys_.push_back(key);
  }
  return Status::OK();
}

Status HashAggregateOp::Open(ExecContext& ctx) {
  groups_.clear();
  group_keys_.clear();
  emit_pos_ = 0;
  // Forget (not release) any stale charge from a failed prior execution:
  // the attempt-boundary rollback in RunPlan already returned those bytes.
  charged_ = 0;
  if (use_batch_ && PrepareBatchBindings()) return OpenBatch(ctx);
  RETURN_NOT_OK(child_->Open(ctx));
  Row row;
  for (;;) {
    ASSIGN_OR_RETURN(bool more, child_->Next(ctx, &row));
    if (!more) break;
    ASSIGN_OR_RETURN(Row key,
                     EvalGroupKey(group_exprs_, row, child_->schema(), ctx));
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      ASSIGN_OR_RETURN(auto states, InitStates(aggs_));
      it = groups_.emplace(key, std::move(states)).first;
      group_keys_.push_back(key);
      if (MemoryAccountant* acc = ctx.accountant()) {
        // Group state is the aggregation's resident footprint; the charge
        // is a pure function of (key, #aggs) so row and batch modes charge
        // identically for the same data (docs/ROBUSTNESS.md).
        const int64_t bytes = EstimateGroupBytes(key, aggs_.size());
        RETURN_NOT_OK(acc->TryCharge(bytes));
        charged_ += bytes;
      }
    }
    for (size_t i = 0; i < aggs_.size(); ++i) {
      RETURN_NOT_OK(AccumulateInto(aggs_[i], it->second[i].get(), row,
                                   child_->schema(), ctx));
    }
  }
  RETURN_NOT_OK(child_->Close(ctx));
  // Scalar aggregate over empty input still emits one row.
  if (group_exprs_.empty() && groups_.empty()) {
    ASSIGN_OR_RETURN(auto states, InitStates(aggs_));
    Row key;  // empty
    groups_.emplace(key, std::move(states));
    group_keys_.push_back(key);
  }
  return Status::OK();
}

Result<bool> HashAggregateOp::Next(ExecContext& ctx, Row* out) {
  if (emit_pos_ >= group_keys_.size()) return false;
  const Row& key = group_keys_[emit_pos_++];
  auto it = groups_.find(key);
  if (it == groups_.end()) return Status::Internal("aggregate group vanished");
  GroupStates& states = it->second;
  *out = key;
  AGGIFY_FAILPOINT("exec.agg.terminate");
  for (size_t i = 0; i < aggs_.size(); ++i) {
    ASSIGN_OR_RETURN(Value v,
                     aggs_[i].function->Terminate(states[i].get(), &ctx));
    out->push_back(std::move(v));
  }
  ++ctx.stats().rows_produced;
  return true;
}

Status HashAggregateOp::Close(ExecContext& ctx) {
  if (MemoryAccountant* acc = ctx.accountant()) acc->Release(charged_);
  charged_ = 0;
  groups_.clear();
  group_keys_.clear();
  return Status::OK();
}

std::string HashAggregateOp::Describe() const {
  std::string out = "HashAggregate(";
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_exprs_[i]->ToString();
  }
  out += group_exprs_.empty() ? "" : "; ";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggs_[i].function->name();
  }
  out += ")";
  if (use_batch_) out += " [batch]";
  return out;
}

// ---- StreamAggregateOp ----

StreamAggregateOp::StreamAggregateOp(OperatorPtr child,
                                     std::vector<ExprPtr> group_exprs,
                                     std::vector<AggregateSpec> aggs,
                                     Schema out_schema)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)),
      schema_(std::move(out_schema)) {}

Status StreamAggregateOp::Open(ExecContext& ctx) {
  child_exhausted_ = false;
  emitted_scalar_ = false;
  have_pending_ = false;
  return child_->Open(ctx);
}

Result<bool> StreamAggregateOp::Next(ExecContext& ctx, Row* out) {
  if (group_exprs_.empty()) {
    // Scalar aggregation: single group over the whole (ordered) input.
    if (emitted_scalar_) return false;
    std::vector<std::unique_ptr<AggregateState>> states;
    for (const auto& spec : aggs_) {
      ASSIGN_OR_RETURN(auto state, spec.function->Init());
      states.push_back(std::move(state));
    }
    Row row;
    for (;;) {
      ASSIGN_OR_RETURN(bool more, child_->Next(ctx, &row));
      if (!more) break;
      for (size_t i = 0; i < aggs_.size(); ++i) {
        RETURN_NOT_OK(AccumulateInto(aggs_[i], states[i].get(), row,
                                     child_->schema(), ctx));
      }
    }
    emitted_scalar_ = true;
    out->clear();
    AGGIFY_FAILPOINT("exec.agg.terminate");
    for (size_t i = 0; i < aggs_.size(); ++i) {
      ASSIGN_OR_RETURN(Value v, aggs_[i].function->Terminate(states[i].get(),
                                                             &ctx));
      out->push_back(std::move(v));
    }
    ++ctx.stats().rows_produced;
    return true;
  }

  // Grouped: input clustered by group key; emit on key change.
  if (child_exhausted_ && !have_pending_) return false;
  std::vector<std::unique_ptr<AggregateState>> states;
  for (const auto& spec : aggs_) {
    ASSIGN_OR_RETURN(auto state, spec.function->Init());
    states.push_back(std::move(state));
  }
  Row group_key;
  if (have_pending_) {
    group_key = pending_key_;
    for (size_t i = 0; i < aggs_.size(); ++i) {
      RETURN_NOT_OK(AccumulateInto(aggs_[i], states[i].get(), pending_row_,
                                   child_->schema(), ctx));
    }
    have_pending_ = false;
  } else {
    Row row;
    ASSIGN_OR_RETURN(bool more, child_->Next(ctx, &row));
    if (!more) {
      child_exhausted_ = true;
      return false;
    }
    ASSIGN_OR_RETURN(group_key,
                     EvalGroupKey(group_exprs_, row, child_->schema(), ctx));
    for (size_t i = 0; i < aggs_.size(); ++i) {
      RETURN_NOT_OK(AccumulateInto(aggs_[i], states[i].get(), row,
                                   child_->schema(), ctx));
    }
  }
  // Consume the rest of this group.
  for (;;) {
    Row row;
    ASSIGN_OR_RETURN(bool more, child_->Next(ctx, &row));
    if (!more) {
      child_exhausted_ = true;
      break;
    }
    ASSIGN_OR_RETURN(Row key,
                     EvalGroupKey(group_exprs_, row, child_->schema(), ctx));
    if (!RowsEqual(key, group_key)) {
      pending_row_ = std::move(row);
      pending_key_ = std::move(key);
      have_pending_ = true;
      break;
    }
    for (size_t i = 0; i < aggs_.size(); ++i) {
      RETURN_NOT_OK(AccumulateInto(aggs_[i], states[i].get(), row,
                                   child_->schema(), ctx));
    }
  }
  *out = group_key;
  AGGIFY_FAILPOINT("exec.agg.terminate");
  for (size_t i = 0; i < aggs_.size(); ++i) {
    ASSIGN_OR_RETURN(Value v,
                     aggs_[i].function->Terminate(states[i].get(), &ctx));
    out->push_back(std::move(v));
  }
  ++ctx.stats().rows_produced;
  return true;
}

Status StreamAggregateOp::Close(ExecContext& ctx) { return child_->Close(ctx); }

std::string StreamAggregateOp::Describe() const {
  std::string out = "StreamAggregate(";
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_exprs_[i]->ToString();
  }
  out += group_exprs_.empty() ? "" : "; ";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggs_[i].function->name();
  }
  return out + ")";
}

}  // namespace aggify
