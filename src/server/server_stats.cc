#include "server/server_stats.h"

#include <utility>
#include <vector>

#include "server/cursor_registry.h"
#include "server/session_manager.h"

namespace aggify {

namespace {

// Single field table drives both renderers, so text and JSON can never
// disagree on names or coverage.
std::vector<std::pair<const char*, int64_t>> Fields(
    const ServerStatsSnapshot& s) {
  return {
      {"rewrite_exec_failures", s.rewrite_exec_failures},
      {"fallbacks_taken", s.fallbacks_taken},
      {"fallback_successes", s.fallback_successes},
      {"verify_runs", s.verify_runs},
      {"verify_mismatches", s.verify_mismatches},
      {"transient_retries", s.transient_retries},
      {"cancellations", s.cancellations},
      {"deadline_timeouts", s.deadline_timeouts},
      {"degraded_batch_to_row", s.degraded_batch_to_row},
      {"degraded_parallel_to_serial", s.degraded_parallel_to_serial},
      {"resource_exhausted_failures", s.resource_exhausted_failures},
      {"admission_waits", s.admission_waits},
      {"admission_rejections", s.admission_rejections},
      {"plan_cache_hits", s.plan_cache_hits},
      {"plan_cache_misses", s.plan_cache_misses},
      {"plan_cache_size", s.plan_cache_size},
      {"sessions_open", s.sessions_open},
      {"sessions_opened", s.sessions_opened},
      {"sessions_closed", s.sessions_closed},
      {"sessions_evicted", s.sessions_evicted},
      {"sessions_rejected", s.sessions_rejected},
      {"cursors_open", s.cursors_open},
      {"cursors_opened", s.cursors_opened},
      {"cursors_closed", s.cursors_closed},
      {"cursors_evicted", s.cursors_evicted},
      {"cursors_rejected", s.cursors_rejected},
      {"cursor_fetches", s.cursor_fetches},
      {"cursor_rows_streamed", s.cursor_rows_streamed},
  };
}

}  // namespace

ServerStatsSnapshot SnapshotServerStats(const RobustnessStats& robustness,
                                        const PlanCache& plan_cache,
                                        const SessionManager* sessions,
                                        const CursorRegistry* cursors) {
  ServerStatsSnapshot s;
  s.rewrite_exec_failures = robustness.rewrite_exec_failures.load();
  s.fallbacks_taken = robustness.fallbacks_taken.load();
  s.fallback_successes = robustness.fallback_successes.load();
  s.verify_runs = robustness.verify_runs.load();
  s.verify_mismatches = robustness.verify_mismatches.load();
  s.transient_retries = robustness.transient_retries.load();
  s.cancellations = robustness.cancellations.load();
  s.deadline_timeouts = robustness.deadline_timeouts.load();
  s.degraded_batch_to_row = robustness.degraded_batch_to_row.load();
  s.degraded_parallel_to_serial = robustness.degraded_parallel_to_serial.load();
  s.resource_exhausted_failures = robustness.resource_exhausted_failures.load();
  s.admission_waits = robustness.admission_waits.load();
  s.admission_rejections = robustness.admission_rejections.load();

  s.plan_cache_hits = plan_cache.hits();
  s.plan_cache_misses = plan_cache.misses();
  s.plan_cache_size = static_cast<int64_t>(plan_cache.size());

  if (sessions != nullptr) {
    auto c = sessions->counters();
    s.sessions_open = sessions->open_sessions();
    s.sessions_opened = c.opened;
    s.sessions_closed = c.closed;
    s.sessions_evicted = c.evicted;
    s.sessions_rejected = c.rejected;
  }
  if (cursors != nullptr) {
    auto c = cursors->counters();
    s.cursors_open = cursors->open_cursors();
    s.cursors_opened = c.opened;
    s.cursors_closed = c.closed;
    s.cursors_evicted = c.evicted;
    s.cursors_rejected = c.rejected;
    s.cursor_fetches = c.fetches;
    s.cursor_rows_streamed = c.rows_streamed;
  }
  return s;
}

std::string RenderStatsText(const ServerStatsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : Fields(snapshot)) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

std::string RenderStatsJson(const ServerStatsSnapshot& snapshot) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : Fields(snapshot)) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += name;
    out += "\": ";
    out += std::to_string(value);
  }
  out += "}";
  return out;
}

}  // namespace aggify
