#include "server/session_manager.h"

namespace aggify {

Result<std::shared_ptr<ServerSession>> SessionManager::Open(
    EngineService* service, const EngineOptions& options, int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.max_sessions > 0 &&
      static_cast<int>(sessions_.size()) >= config_.max_sessions) {
    ++counters_.rejected;
    return Status::ResourceExhausted(
        "session table full (" + std::to_string(config_.max_sessions) +
        " open sessions)");
  }
  uint64_t id = next_id_++;
  auto session = std::make_shared<ServerSession>(id, service, options);
  session->last_used_ms.store(now_ms, std::memory_order_relaxed);
  sessions_[id] = session;
  ++counters_.opened;
  return session;
}

Result<std::shared_ptr<ServerSession>> SessionManager::Find(
    uint64_t session_id, int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + std::to_string(session_id));
  }
  it->second->last_used_ms.store(now_ms, std::memory_order_relaxed);
  return it->second;
}

Status SessionManager::Close(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + std::to_string(session_id));
  }
  sessions_.erase(it);
  ++counters_.closed;
  return Status::OK();
}

std::vector<uint64_t> SessionManager::SweepIdle(int64_t now_ms) {
  std::vector<uint64_t> evicted;
  if (config_.idle_ttl_ms <= 0) return evicted;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    int64_t last = it->second->last_used_ms.load(std::memory_order_relaxed);
    if (now_ms - last < config_.idle_ttl_ms) {
      ++it;
      continue;
    }
    evicted.push_back(it->first);
    it = sessions_.erase(it);
    ++counters_.evicted;
  }
  return evicted;
}

int64_t SessionManager::open_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(sessions_.size());
}

SessionManager::Counters SessionManager::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace aggify
