// SessionManager: id-keyed table of connected clients. Each session wraps a
// ClientSession (cheap handle onto the shared EngineService) with a
// per-session mutex — the server holds it across QUERY/DECLARE/FETCH so one
// client's commands serialize while different clients run concurrently —
// and an idle clock for TTL eviction. Bounded capacity: OPEN beyond
// `max_sessions` is rejected with kResourceExhausted.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "procedural/service.h"

namespace aggify {

/// One connected client as the server sees it. Lifetime is shared_ptr so a
/// command already executing survives a concurrent eviction of its session.
struct ServerSession {
  uint64_t id = 0;
  ClientSession client;
  /// Serializes this session's commands; never held while another session's
  /// mutex is held (no lock order between sessions).
  std::mutex mu;
  /// Atomic so the sweep can read it without taking `mu` (which a slow
  /// command may hold for a while).
  std::atomic<int64_t> last_used_ms{0};

  ServerSession(uint64_t session_id, EngineService* service,
                const EngineOptions& options)
      : id(session_id), client(service, options, session_id) {}
};

class SessionManager {
 public:
  struct Config {
    int max_sessions = 256;
    /// A session idle this long is evicted by the sweep. <= 0 disables.
    int64_t idle_ttl_ms = 60'000;
  };

  struct Counters {
    int64_t opened = 0;
    int64_t closed = 0;
    int64_t evicted = 0;
    int64_t rejected = 0;
  };

  explicit SessionManager(Config config) : config_(config) {}

  /// Errors: ResourceExhausted at the configured bound.
  Result<std::shared_ptr<ServerSession>> Open(EngineService* service,
                                              const EngineOptions& options,
                                              int64_t now_ms);

  /// Looks the session up and touches its idle clock. Errors: NotFound.
  Result<std::shared_ptr<ServerSession>> Find(uint64_t session_id,
                                              int64_t now_ms);

  /// Client CLOSE. Errors: NotFound.
  Status Close(uint64_t session_id);

  /// Evicts idle-expired sessions; returns their ids so the caller can tear
  /// down their cursors in the registry.
  std::vector<uint64_t> SweepIdle(int64_t now_ms);

  int64_t open_sessions() const;
  Counters counters() const;

 private:
  Config config_;
  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<ServerSession>> sessions_;
  uint64_t next_id_ = 1;
  Counters counters_;
};

}  // namespace aggify
