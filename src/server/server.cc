#include "server/server.h"

#include <cctype>
#include <chrono>
#include <memory>
#include <utility>
#include <vector>

namespace aggify {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// "resource exhausted" -> "resource_exhausted": a single ERR code token.
std::string ErrCode(StatusCode code) {
  std::string out(StatusCodeToString(code));
  for (char& c : out) {
    if (c == ' ') c = '_';
  }
  return out;
}

std::string ErrReply(const Status& status) {
  return "ERR " + ErrCode(status.code()) + " " + status.message() + "\n";
}

/// Splits off the first whitespace-delimited token; `rest` gets the
/// remainder with leading whitespace stripped.
std::string TakeToken(const std::string& input, std::string* rest) {
  size_t start = input.find_first_not_of(" \t");
  if (start == std::string::npos) {
    rest->clear();
    return "";
  }
  size_t end = input.find_first_of(" \t", start);
  std::string token = input.substr(start, end - start);
  if (end == std::string::npos) {
    rest->clear();
  } else {
    size_t next = input.find_first_not_of(" \t", end);
    *rest = next == std::string::npos ? "" : input.substr(next);
  }
  return token;
}

Result<uint64_t> ParseId(const std::string& token, const char* what) {
  if (token.empty()) {
    return Status::InvalidArgument(std::string("missing ") + what);
  }
  uint64_t value = 0;
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument(std::string("bad ") + what + ": " +
                                     token);
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

Result<int64_t> ParseI64(const std::string& token, const char* what) {
  ASSIGN_OR_RETURN(uint64_t v, ParseId(token, what));
  return static_cast<int64_t>(v);
}

std::string RenderRow(const Row& row) {
  std::string out = "ROW";
  for (const Value& v : row) {
    out += '\t';
    out += v.ToString();
  }
  out += '\n';
  return out;
}

std::string RenderSchema(const Schema& schema) {
  std::string out = "SCHEMA";
  for (const auto& col : schema.columns()) {
    out += '\t';
    out += col.name;
  }
  out += '\n';
  return out;
}

}  // namespace

Server::Server(EngineService* service, Config config)
    : service_(service),
      config_(std::move(config)),
      clock_(config_.clock_ms ? config_.clock_ms : SteadyNowMs),
      sessions_(config_.sessions),
      cursors_(config_.cursors) {}

void Server::Sweep(int64_t now_ms) {
  for (uint64_t sid : sessions_.SweepIdle(now_ms)) {
    cursors_.CloseSession(sid);
  }
  cursors_.SweepExpired(now_ms);
}

std::string Server::Handle(const std::string& request) {
  int64_t now_ms = clock_();
  Sweep(now_ms);

  std::string args;
  std::string command = TakeToken(request, &args);
  for (char& c : command) c = std::toupper(static_cast<unsigned char>(c));

  if (command == "OPEN") return HandleOpen(args, now_ms);
  if (command == "QUERY") return HandleQuery(args, now_ms);
  if (command == "DECLARE") return HandleDeclare(args, now_ms);
  if (command == "FETCH") return HandleFetch(args, now_ms);
  if (command == "CLOSE") return HandleClose(args, now_ms);
  if (command == "STATS") return HandleStats(args);
  return ErrReply(
      Status::InvalidArgument("unknown command: " + command));
}

std::string Server::HandleOpen(const std::string& args, int64_t now_ms) {
  EngineOptions options = service_->options();
  std::string rest = args;
  while (!rest.empty()) {
    std::string token = TakeToken(rest, &rest);
    if (token.empty()) break;
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return ErrReply(Status::InvalidArgument("bad OPEN option: " + token));
    }
    std::string key = token.substr(0, eq);
    auto value = ParseI64(token.substr(eq + 1), key.c_str());
    if (!value.ok()) return ErrReply(value.status());
    if (key == "dop") {
      options.execution.degree_of_parallelism = static_cast<int>(*value);
    } else if (key == "batch") {
      options.execution.enable_batch = *value != 0;
    } else if (key == "timeout_ms") {
      options.limits.timeout_ms = *value;
    } else if (key == "memory_limit_bytes") {
      options.limits.memory_limit_bytes = *value;
    } else if (key == "session_memory_limit_bytes") {
      options.limits.session_memory_limit_bytes = *value;
    } else {
      return ErrReply(Status::InvalidArgument("unknown OPEN option: " + key));
    }
  }
  auto session = sessions_.Open(service_, options, now_ms);
  if (!session.ok()) return ErrReply(session.status());
  return "OK " + std::to_string((*session)->id) + "\n";
}

std::string Server::HandleQuery(const std::string& args, int64_t now_ms) {
  std::string sql;
  std::string sid_token = TakeToken(args, &sql);
  auto sid = ParseId(sid_token, "session id");
  if (!sid.ok()) return ErrReply(sid.status());
  if (sql.empty()) {
    return ErrReply(Status::InvalidArgument("QUERY needs a statement"));
  }
  auto session = sessions_.Find(*sid, now_ms);
  if (!session.ok()) return ErrReply(session.status());

  std::lock_guard<std::mutex> lock((*session)->mu);
  auto result = (*session)->client.Query(sql);
  if (!result.ok()) return ErrReply(result.status());

  std::string out = RenderSchema(result->schema);
  for (const Row& row : result->rows) out += RenderRow(row);
  out += "OK " + std::to_string(result->rows.size()) + "\n";
  return out;
}

std::string Server::HandleDeclare(const std::string& args, int64_t now_ms) {
  std::string sql;
  std::string sid_token = TakeToken(args, &sql);
  auto sid = ParseId(sid_token, "session id");
  if (!sid.ok()) return ErrReply(sid.status());
  if (sql.empty()) {
    return ErrReply(Status::InvalidArgument("DECLARE needs a statement"));
  }
  auto session = sessions_.Find(*sid, now_ms);
  if (!session.ok()) return ErrReply(session.status());

  std::lock_guard<std::mutex> lock((*session)->mu);
  auto cursor = (*session)->client.Declare(sql, config_.cursor_deadline_ms);
  if (!cursor.ok()) return ErrReply(cursor.status());
  auto cid = cursors_.Insert(*sid, std::move(*cursor), now_ms);
  if (!cid.ok()) return ErrReply(cid.status());
  return "CURSOR " + std::to_string(*cid) + "\n";
}

std::string Server::HandleFetch(const std::string& args, int64_t now_ms) {
  std::string rest;
  auto sid = ParseId(TakeToken(args, &rest), "session id");
  if (!sid.ok()) return ErrReply(sid.status());
  auto cid = ParseId(TakeToken(rest, &rest), "cursor id");
  if (!cid.ok()) return ErrReply(cid.status());
  int64_t n = config_.default_fetch_rows;
  std::string n_token = TakeToken(rest, &rest);
  if (!n_token.empty()) {
    auto parsed = ParseI64(n_token, "fetch count");
    if (!parsed.ok()) return ErrReply(parsed.status());
    n = *parsed;
  }
  auto session = sessions_.Find(*sid, now_ms);
  if (!session.ok()) return ErrReply(session.status());

  std::lock_guard<std::mutex> lock((*session)->mu);
  auto lease = cursors_.Checkout(*cid, *sid, now_ms);
  if (!lease.ok()) return ErrReply(lease.status());

  auto page = (*lease)->Fetch(n);
  if (!page.ok()) return ErrReply(page.status());

  cursors_.RecordFetch(static_cast<int64_t>(page->rows.size()));
  std::string out;
  for (const Row& row : page->rows) out += RenderRow(row);
  if (page->done) {
    out += "DONE " + std::to_string((*lease)->rows_fetched()) + "\n";
  } else {
    out += "MORE " + std::to_string(page->rows.size()) + "\n";
  }
  return out;
}

std::string Server::HandleClose(const std::string& args, int64_t now_ms) {
  std::string rest;
  auto sid = ParseId(TakeToken(args, &rest), "session id");
  if (!sid.ok()) return ErrReply(sid.status());

  std::string cid_token = TakeToken(rest, &rest);
  if (!cid_token.empty()) {
    auto cid = ParseId(cid_token, "cursor id");
    if (!cid.ok()) return ErrReply(cid.status());
    // Validate the session exists (and touch it) before closing the cursor.
    auto session = sessions_.Find(*sid, now_ms);
    if (!session.ok()) return ErrReply(session.status());
    Status status = cursors_.Close(*cid, *sid);
    if (!status.ok()) return ErrReply(status);
    return "OK\n";
  }

  cursors_.CloseSession(*sid);
  Status status = sessions_.Close(*sid);
  if (!status.ok()) return ErrReply(status);
  return "OK\n";
}

std::string Server::HandleStats(const std::string& args) {
  std::string rest;
  std::string mode = TakeToken(args, &rest);
  ServerStatsSnapshot snapshot = Stats();
  if (mode == "json") return RenderStatsJson(snapshot) + "\n";
  if (!mode.empty()) {
    return ErrReply(Status::InvalidArgument("bad STATS mode: " + mode));
  }
  return RenderStatsText(snapshot);
}

ServerStatsSnapshot Server::Stats() const {
  return SnapshotServerStats(service_->db()->robustness(),
                             service_->engine().plan_cache(), &sessions_,
                             &cursors_);
}

}  // namespace aggify
