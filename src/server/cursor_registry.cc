#include "server/cursor_registry.h"

#include <vector>

namespace aggify {

void CursorRegistry::Lease::Checkin() {
  if (registry_ == nullptr) return;
  registry_->CheckinLocked(id_, cursor_);
  registry_ = nullptr;
  cursor_ = nullptr;
}

Result<uint64_t> CursorRegistry::Insert(uint64_t session_id,
                                        std::unique_ptr<QueryCursor> cursor,
                                        int64_t now_ms) {
  std::unique_ptr<QueryCursor> reject;  // destroyed outside the lock
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (config_.max_cursors > 0 &&
        static_cast<int>(entries_.size()) >= config_.max_cursors) {
      ++counters_.rejected;
      reject = std::move(cursor);
    } else {
      uint64_t id = next_id_++;
      Entry& entry = entries_[id];
      entry.cursor = std::move(cursor);
      entry.session_id = session_id;
      entry.last_used_ms = now_ms;
      ++counters_.opened;
      return id;
    }
  }
  return Status::ResourceExhausted(
      "cursor registry full (" + std::to_string(config_.max_cursors) +
      " open cursors); CLOSE or drain one first");
}

Result<CursorRegistry::Lease> CursorRegistry::Checkout(uint64_t cursor_id,
                                                       uint64_t session_id,
                                                       int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(cursor_id);
  if (it == entries_.end() || it->second.session_id != session_id) {
    return Status::NotFound("no such cursor: " + std::to_string(cursor_id));
  }
  Entry& entry = it->second;
  if (entry.busy) {
    return Status::ExecutionError("cursor " + std::to_string(cursor_id) +
                                  " is busy (one FETCH at a time)");
  }
  entry.busy = true;
  entry.last_used_ms = now_ms;
  ++counters_.fetches;
  return Lease(this, cursor_id, entry.cursor.get());
}

void CursorRegistry::CheckinLocked(uint64_t id, QueryCursor* cursor) {
  std::unique_ptr<QueryCursor> dead;  // destroyed outside the lock
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return;  // unreachable: busy entries stay put
    Entry& entry = it->second;
    entry.busy = false;
    if (entry.doomed || cursor->done()) {
      dead = std::move(entry.cursor);
      entries_.erase(it);
      ++counters_.closed;
    }
  }
}

Status CursorRegistry::Close(uint64_t cursor_id, uint64_t session_id) {
  std::unique_ptr<QueryCursor> dead;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(cursor_id);
    if (it == entries_.end() || it->second.session_id != session_id) {
      return Status::NotFound("no such cursor: " + std::to_string(cursor_id));
    }
    Entry& entry = it->second;
    if (entry.busy) {
      entry.doomed = true;
      if (entry.cursor->query_context() != nullptr) {
        entry.cursor->query_context()->Cancel();
      }
    } else {
      dead = std::move(entry.cursor);
      entries_.erase(it);
      ++counters_.closed;
    }
  }
  return Status::OK();
}

int64_t CursorRegistry::CloseSession(uint64_t session_id) {
  std::vector<std::unique_ptr<QueryCursor>> dead;
  int64_t torn_down = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end();) {
      Entry& entry = it->second;
      if (entry.session_id != session_id) {
        ++it;
        continue;
      }
      ++torn_down;
      if (entry.busy) {
        entry.doomed = true;
        if (entry.cursor->query_context() != nullptr) {
          entry.cursor->query_context()->Cancel();
        }
        ++it;
      } else {
        dead.push_back(std::move(entry.cursor));
        it = entries_.erase(it);
        ++counters_.evicted;
      }
    }
  }
  return torn_down;
}

int64_t CursorRegistry::SweepExpired(int64_t now_ms) {
  if (config_.idle_ttl_ms <= 0) return 0;
  std::vector<std::unique_ptr<QueryCursor>> dead;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end();) {
      Entry& entry = it->second;
      if (entry.busy || now_ms - entry.last_used_ms < config_.idle_ttl_ms) {
        ++it;
        continue;
      }
      dead.push_back(std::move(entry.cursor));
      it = entries_.erase(it);
      ++counters_.evicted;
    }
  }
  return static_cast<int64_t>(dead.size());
}

int64_t CursorRegistry::open_cursors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

CursorRegistry::Counters CursorRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void CursorRegistry::RecordFetch(int64_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.rows_streamed += rows;
}

}  // namespace aggify
