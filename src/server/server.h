// Server: the multi-client front end. One instance multiplexes many
// concurrent client sessions over a shared EngineService, driven by a small
// line-oriented text protocol (docs/SERVER.md):
//
//   OPEN [dop=N] [batch=0|1] [timeout_ms=N] [memory_limit_bytes=N]
//        [session_memory_limit_bytes=N]            -> OK <sid>
//   QUERY <sid> <sql>                 -> SCHEMA ... / ROW ... / OK <rows>
//   DECLARE <sid> <sql>               -> CURSOR <cid>
//   FETCH <sid> <cid> [n]             -> ROW ... / MORE <n> | DONE <total>
//   CLOSE <sid> [<cid>]               -> OK
//   STATS [json]                      -> the shared ServerStatsSnapshot
//   any failure                       -> ERR <code> <message>
//
// Handle() is thread-safe: each call is one client request, and callers on
// different threads model different connections. Commands of one session
// serialize on the session's mutex; different sessions run concurrently
// through the engine's shared plan cache and admission gate. Every Handle
// also lazily sweeps idle sessions (tearing down their cursors — invariant
// 13: a cursor never outlives its session) and TTL-expired cursors.
//
// Serving is read-only: the catalog is loaded once via
// EngineService::RunScript before serving starts, and the protocol only
// accepts SELECTs. (Catalog mutation is not thread-safe; a serving DDL path
// would need a catalog lock this PR does not add.)
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "server/cursor_registry.h"
#include "server/server_stats.h"
#include "server/session_manager.h"

namespace aggify {

class Server {
 public:
  struct Config {
    SessionManager::Config sessions;
    CursorRegistry::Config cursors;
    /// Rows per FETCH when the client omits the count.
    int64_t default_fetch_rows = 16;
    /// Lifetime deadline installed on every DECLAREd cursor (0 = only the
    /// session's per-statement timeout applies).
    int64_t cursor_deadline_ms = 0;
    /// Injectable monotonic clock for deterministic TTL tests; null uses
    /// std::chrono::steady_clock.
    std::function<int64_t()> clock_ms;
  };

  explicit Server(EngineService* service) : Server(service, Config()) {}
  Server(EngineService* service, Config config);

  /// \brief Serves one protocol request, returning the full reply (possibly
  /// multi-line, '\n'-separated). Thread-safe; never throws protocol errors
  /// — they come back as "ERR <code> <message>".
  std::string Handle(const std::string& request);

  ServerStatsSnapshot Stats() const;

  EngineService* service() const { return service_; }
  SessionManager& sessions() { return sessions_; }
  CursorRegistry& cursors() { return cursors_; }
  int64_t NowMs() const { return clock_(); }

 private:
  std::string HandleOpen(const std::string& args, int64_t now_ms);
  std::string HandleQuery(const std::string& args, int64_t now_ms);
  std::string HandleDeclare(const std::string& args, int64_t now_ms);
  std::string HandleFetch(const std::string& args, int64_t now_ms);
  std::string HandleClose(const std::string& args, int64_t now_ms);
  std::string HandleStats(const std::string& args);
  /// Evicts idle sessions (and their cursors) and expired cursors.
  void Sweep(int64_t now_ms);

  EngineService* service_;
  Config config_;
  std::function<int64_t()> clock_;
  SessionManager sessions_;
  CursorRegistry cursors_;
};

}  // namespace aggify
