// ServerStatsSnapshot: one plain-integer copy of every observability
// counter the engine keeps — robustness outcomes, plan-cache hit rate,
// session/cursor lifecycle. The server's STATS command and `aggify_cli
// stats` render this same struct (text or JSON), so the two surfaces can
// never drift apart.
#pragma once

#include <cstdint>
#include <string>

#include "common/robustness_stats.h"
#include "plan/query_engine.h"

namespace aggify {

class SessionManager;
class CursorRegistry;

struct ServerStatsSnapshot {
  // RobustnessStats (atomics copied to plain ints — the snapshot is not
  // itself a consistent cut, same as RobustnessStats::ToString).
  int64_t rewrite_exec_failures = 0;
  int64_t fallbacks_taken = 0;
  int64_t fallback_successes = 0;
  int64_t verify_runs = 0;
  int64_t verify_mismatches = 0;
  int64_t transient_retries = 0;
  int64_t cancellations = 0;
  int64_t deadline_timeouts = 0;
  int64_t degraded_batch_to_row = 0;
  int64_t degraded_parallel_to_serial = 0;
  int64_t resource_exhausted_failures = 0;
  int64_t admission_waits = 0;
  int64_t admission_rejections = 0;

  // Plan cache.
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t plan_cache_size = 0;

  // Sessions (zero when no server is running, e.g. `aggify_cli stats`).
  int64_t sessions_open = 0;
  int64_t sessions_opened = 0;
  int64_t sessions_closed = 0;
  int64_t sessions_evicted = 0;
  int64_t sessions_rejected = 0;

  // Cursors.
  int64_t cursors_open = 0;
  int64_t cursors_opened = 0;
  int64_t cursors_closed = 0;
  int64_t cursors_evicted = 0;
  int64_t cursors_rejected = 0;
  int64_t cursor_fetches = 0;
  int64_t cursor_rows_streamed = 0;
};

/// Copies the live counters. `sessions` / `cursors` may be null (one-shot
/// CLI use): their fields stay zero.
ServerStatsSnapshot SnapshotServerStats(const RobustnessStats& robustness,
                                        const PlanCache& plan_cache,
                                        const SessionManager* sessions,
                                        const CursorRegistry* cursors);

/// `key=value` lines grouped by section — the human form.
std::string RenderStatsText(const ServerStatsSnapshot& snapshot);

/// One flat JSON object, keys identical to the text form.
std::string RenderStatsJson(const ServerStatsSnapshot& snapshot);

}  // namespace aggify
