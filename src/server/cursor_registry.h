// CursorRegistry: the server's table of live incremental-fetch cursors —
// the RediSearch coordinator-cursor model (`aggregate/cursor.c`): bounded
// count, per-cursor idle TTL, lazy sweeping, id-keyed lookup that verifies
// session ownership (a cursor is only ever visible to the session that
// declared it, and never outlives it — DESIGN.md invariant 13).
//
// Concurrency: the map and counters are mutex-guarded; the fetch itself is
// not. A cursor is used through a busy *checkout* (Lease): while checked
// out it cannot be checked out again, closed-and-destroyed, or swept —
// closing or evicting a busy cursor marks it doomed (and cancels its
// QueryContext so a slow fetch stops cooperatively); the lease destroys it
// at check-in. This is the same discipline PlanCache uses for in-use plans.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "plan/query_engine.h"

namespace aggify {

class CursorRegistry {
 public:
  struct Config {
    /// Bound on concurrently open cursors across all sessions; DECLARE
    /// beyond it is rejected with kResourceExhausted (client closes or
    /// drains something first).
    int max_cursors = 64;
    /// A cursor idle (no FETCH) this long is evicted by the sweep. <= 0
    /// disables TTL eviction.
    int64_t idle_ttl_ms = 30'000;
  };

  /// Monotonic totals for STATS (open count is derived from the map).
  struct Counters {
    int64_t opened = 0;
    int64_t closed = 0;    ///< client CLOSE or drained to completion
    int64_t evicted = 0;   ///< TTL sweep or session teardown
    int64_t rejected = 0;  ///< DECLAREs refused at capacity
    int64_t fetches = 0;
    int64_t rows_streamed = 0;
  };

  explicit CursorRegistry(Config config) : config_(config) {}

  /// \brief Busy checkout of one cursor. Movable, not copyable; check-in on
  /// destruction updates the idle clock and destroys the cursor if it
  /// finished (done), failed, or was doomed while checked out.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept { *this = std::move(o); }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        Checkin();
        registry_ = o.registry_;
        id_ = o.id_;
        cursor_ = o.cursor_;
        o.registry_ = nullptr;
        o.cursor_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Checkin(); }

    explicit operator bool() const { return cursor_ != nullptr; }
    QueryCursor* cursor() const { return cursor_; }
    QueryCursor* operator->() const { return cursor_; }

   private:
    friend class CursorRegistry;
    Lease(CursorRegistry* registry, uint64_t id, QueryCursor* cursor)
        : registry_(registry), id_(id), cursor_(cursor) {}
    void Checkin();

    CursorRegistry* registry_ = nullptr;
    uint64_t id_ = 0;
    QueryCursor* cursor_ = nullptr;
  };

  /// Registers a freshly opened cursor for `session_id`. Errors:
  /// ResourceExhausted at the configured bound.
  Result<uint64_t> Insert(uint64_t session_id,
                          std::unique_ptr<QueryCursor> cursor, int64_t now_ms);

  /// Checks the cursor out for one fetch. Errors: NotFound for an unknown,
  /// evicted, or foreign-session cursor; ExecutionError if it is already
  /// checked out (one fetch at a time).
  Result<Lease> Checkout(uint64_t cursor_id, uint64_t session_id,
                         int64_t now_ms);

  /// Client CLOSE. A busy cursor is doomed (cancelled + destroyed at
  /// check-in); an idle one is destroyed here. Errors: NotFound.
  Status Close(uint64_t cursor_id, uint64_t session_id);

  /// Session teardown: destroys (or dooms) every cursor of the session.
  /// Returns how many were torn down.
  int64_t CloseSession(uint64_t session_id);

  /// Evicts idle-expired cursors (busy ones are skipped; they re-arm their
  /// TTL at check-in). Returns how many were evicted.
  int64_t SweepExpired(int64_t now_ms);

  /// Live cursors right now (includes busy ones).
  int64_t open_cursors() const;
  Counters counters() const;
  /// Records rows streamed out of a fetch (for STATS; called by the server
  /// after a successful FETCH).
  void RecordFetch(int64_t rows);

 private:
  struct Entry {
    std::unique_ptr<QueryCursor> cursor;
    uint64_t session_id = 0;
    int64_t last_used_ms = 0;
    bool busy = false;
    bool doomed = false;
  };

  void CheckinLocked(uint64_t id, QueryCursor* cursor);

  Config config_;
  mutable std::mutex mu_;
  std::map<uint64_t, Entry> entries_;
  uint64_t next_id_ = 1;
  Counters counters_;
};

}  // namespace aggify
