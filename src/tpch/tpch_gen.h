// Deterministic TPC-H-like data generator (dbgen analogue).
//
// Produces the eight TPC-H tables at a configurable scale factor with the
// value distributions the reproduced queries depend on (promo part types,
// 'special requests' order comments, late lineitem receipts, ...). The
// paper ran at SF 10; this generator targets laptop scale (SF 0.001–0.1) —
// DESIGN.md §3 discusses why the shape of the results is preserved.
#pragma once

#include "common/random.h"
#include "storage/catalog.h"

namespace aggify {

struct TpchConfig {
  double scale_factor = 0.01;
  uint64_t seed = 20200614;  // SIGMOD 2020
  /// Creates the paper's indexes: LINEITEM(l_orderkey), LINEITEM(l_suppkey),
  /// ORDERS(o_custkey), PARTSUPP(ps_partkey).
  bool create_paper_indexes = true;

  int64_t num_parts() const { return Scaled(200000); }
  int64_t num_suppliers() const { return Scaled(10000); }
  int64_t num_customers() const { return Scaled(150000); }
  int64_t num_orders() const { return Scaled(1500000); }

 private:
  int64_t Scaled(int64_t base) const {
    auto n = static_cast<int64_t>(static_cast<double>(base) * scale_factor);
    return n < 1 ? 1 : n;
  }
};

/// \brief Creates and populates the TPC-H tables in `db`.
/// Errors: AlreadyExists if the tables are already present.
Status PopulateTpch(Database* db, const TpchConfig& config = {});

}  // namespace aggify
