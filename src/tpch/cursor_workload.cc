#include "tpch/cursor_workload.h"

namespace aggify {

namespace {

std::vector<TpchCursorQuery> BuildQueries() {
  std::vector<TpchCursorQuery> queries;

  // ---- Q2: minimum-cost supplier per part (the paper's running example).
  {
    TpchCursorQuery q;
    q.id = "Q2";
    q.description = "minimum-cost supplier per part";
    q.udf_names = {"q2_mincostsupp"};
    q.udf_sql = R"(
      CREATE FUNCTION q2_mincostsupp(@pkey INT) RETURNS CHAR(25) AS
      BEGIN
        DECLARE @pcost DECIMAL(15,2);
        DECLARE @sname CHAR(25);
        DECLARE @mincost DECIMAL(15,2) = 100000000;
        DECLARE @supp CHAR(25);
        DECLARE c CURSOR FOR
          SELECT ps_supplycost, s_name FROM partsupp, supplier
          WHERE ps_partkey = @pkey AND ps_suppkey = s_suppkey;
        OPEN c;
        FETCH NEXT FROM c INTO @pcost, @sname;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF (@pcost < @mincost)
          BEGIN
            SET @mincost = @pcost;
            SET @supp = @sname;
          END
          FETCH NEXT FROM c INTO @pcost, @sname;
        END
        CLOSE c;
        DEALLOCATE c;
        RETURN @supp;
      END
    )";
    q.driver_sql =
        "SELECT p_partkey, q2_mincostsupp(p_partkey) AS minsupp FROM part";
    queries.push_back(std::move(q));
  }

  // ---- Q13: orders per customer, excluding special-request comments.
  {
    TpchCursorQuery q;
    q.id = "Q13";
    q.description = "order count per customer (comment-filtered)";
    q.udf_names = {"q13_countorders"};
    q.udf_sql = R"(
      CREATE FUNCTION q13_countorders(@ck INT) RETURNS INT AS
      BEGIN
        DECLARE @cmt VARCHAR(79);
        DECLARE @cnt INT = 0;
        DECLARE c CURSOR FOR
          SELECT o_comment FROM orders WHERE o_custkey = @ck;
        OPEN c;
        FETCH NEXT FROM c INTO @cmt;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF (charindex('special', @cmt) = 0)
            SET @cnt = @cnt + 1;
          FETCH NEXT FROM c INTO @cmt;
        END
        CLOSE c;
        DEALLOCATE c;
        RETURN @cnt;
      END
    )";
    q.driver_sql =
        "SELECT c_custkey, q13_countorders(c_custkey) AS cnt FROM customer";
    queries.push_back(std::move(q));
  }

  // ---- Q14: promo revenue share over a shipping month. One big loop with
  // two live accumulators (multi-variable V_term) — not Froid-inlinable.
  {
    TpchCursorQuery q;
    q.id = "Q14";
    q.description = "promotion revenue share";
    q.udf_names = {"q14_promo_revenue"};
    q.froid_applicable = false;
    q.udf_sql = R"(
      CREATE FUNCTION q14_promo_revenue(@from DATE, @to DATE) RETURNS FLOAT AS
      BEGIN
        DECLARE @price FLOAT;
        DECLARE @disc FLOAT;
        DECLARE @ptype VARCHAR(25);
        DECLARE @promo FLOAT = 0.0;
        DECLARE @total FLOAT = 0.0;
        DECLARE c CURSOR FOR
          SELECT l_extendedprice, l_discount, p_type FROM lineitem, part
          WHERE l_partkey = p_partkey
            AND l_shipdate >= @from AND l_shipdate < @to;
        OPEN c;
        FETCH NEXT FROM c INTO @price, @disc, @ptype;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          DECLARE @rev FLOAT = @price * (1 - @disc);
          IF (charindex('PROMO', @ptype) = 1)
            SET @promo = @promo + @rev;
          SET @total = @total + @rev;
          FETCH NEXT FROM c INTO @price, @disc, @ptype;
        END
        CLOSE c;
        DEALLOCATE c;
        IF (@total = 0)
          RETURN 0.0;
        RETURN 100.0 * @promo / @total;
      END
    )";
    q.driver_sql =
        "SELECT q14_promo_revenue('1995-09-01', '1995-10-01') AS promo_share";
    queries.push_back(std::move(q));
  }

  // ---- Q18: total lineitem quantity per order (large-volume customers).
  {
    TpchCursorQuery q;
    q.id = "Q18";
    q.description = "total quantity per order";
    q.udf_names = {"q18_totalqty"};
    q.udf_sql = R"(
      CREATE FUNCTION q18_totalqty(@ok INT) RETURNS FLOAT AS
      BEGIN
        DECLARE @qty FLOAT;
        DECLARE @sum FLOAT = 0.0;
        DECLARE c CURSOR FOR
          SELECT l_quantity FROM lineitem WHERE l_orderkey = @ok;
        OPEN c;
        FETCH NEXT FROM c INTO @qty;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @sum = @sum + @qty;
          FETCH NEXT FROM c INTO @qty;
        END
        CLOSE c;
        DEALLOCATE c;
        RETURN @sum;
      END
    )";
    q.driver_sql =
        "SELECT o_orderkey, q18_totalqty(o_orderkey) AS totqty FROM orders";
    queries.push_back(std::move(q));
  }

  // ---- Q19: discounted revenue under disjunctive brand/quantity/size
  // predicates; single loop, two live accumulators are not needed — but the
  // complex OR predicate lives in the loop body. Not Froid-inlinable
  // because the driver calls it once (inlining gives nothing) and the body
  // references fetch variables in a single-variable V_term; keep it
  // inline-eligible and let the pipeline decide.
  {
    TpchCursorQuery q;
    q.id = "Q19";
    q.description = "discounted revenue (disjunctive predicates)";
    q.udf_names = {"q19_revenue"};
    q.udf_sql = R"(
      CREATE FUNCTION q19_revenue() RETURNS FLOAT AS
      BEGIN
        DECLARE @price FLOAT;
        DECLARE @disc FLOAT;
        DECLARE @qty FLOAT;
        DECLARE @size INT;
        DECLARE @mfgr VARCHAR(25);
        DECLARE @rev FLOAT = 0.0;
        DECLARE c CURSOR FOR
          SELECT l_extendedprice, l_discount, l_quantity, p_size, p_mfgr
          FROM lineitem, part
          WHERE l_partkey = p_partkey;
        OPEN c;
        FETCH NEXT FROM c INTO @price, @disc, @qty, @size, @mfgr;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF ((@mfgr = 'Manufacturer#1' AND @qty >= 1 AND @qty <= 11
               AND @size <= 5)
              OR (@mfgr = 'Manufacturer#2' AND @qty >= 10 AND @qty <= 20
                  AND @size <= 10)
              OR (@mfgr = 'Manufacturer#3' AND @qty >= 20 AND @qty <= 30
                  AND @size <= 15))
            SET @rev = @rev + @price * (1 - @disc);
          FETCH NEXT FROM c INTO @price, @disc, @qty, @size, @mfgr;
        END
        CLOSE c;
        DEALLOCATE c;
        RETURN @rev;
      END
    )";
    q.driver_sql = "SELECT q19_revenue() AS revenue";
    queries.push_back(std::move(q));
  }

  // ---- Q21: suppliers who kept orders waiting (nested queries inside the
  // loop body).
  {
    TpchCursorQuery q;
    q.id = "Q21";
    q.description = "waiting orders per supplier (nested subqueries in loop)";
    q.udf_names = {"q21_numwaiting"};
    q.udf_sql = R"(
      CREATE FUNCTION q21_numwaiting(@sk INT) RETURNS INT AS
      BEGIN
        DECLARE @ok INT;
        DECLARE @cnt INT = 0;
        DECLARE c CURSOR FOR
          SELECT l_orderkey FROM lineitem
          WHERE l_suppkey = @sk AND l_receiptdate > l_commitdate;
        OPEN c;
        FETCH NEXT FROM c INTO @ok;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          DECLARE @others INT;
          DECLARE @otherslate INT;
          SET @others = (SELECT COUNT(*) FROM lineitem
                         WHERE l_orderkey = @ok AND l_suppkey <> @sk);
          SET @otherslate = (SELECT COUNT(*) FROM lineitem
                             WHERE l_orderkey = @ok AND l_suppkey <> @sk
                               AND l_receiptdate > l_commitdate);
          IF (@others > 0 AND @otherslate = 0)
            SET @cnt = @cnt + 1;
          FETCH NEXT FROM c INTO @ok;
        END
        CLOSE c;
        DEALLOCATE c;
        RETURN @cnt;
      END
    )";
    q.driver_sql =
        "SELECT s_suppkey, q21_numwaiting(s_suppkey) AS numwait FROM supplier";
    queries.push_back(std::move(q));
  }

  return queries;
}

}  // namespace

const std::vector<TpchCursorQuery>& TpchCursorQueries() {
  static const std::vector<TpchCursorQuery>* kQueries =
      new std::vector<TpchCursorQuery>(BuildQueries());
  return *kQueries;
}

Status RegisterTpchCursorWorkload(Session* session) {
  for (const auto& q : TpchCursorQueries()) {
    RETURN_NOT_OK(session->RunSql(q.udf_sql).status());
  }
  return Status::OK();
}

Result<TpchCursorQuery> GetTpchCursorQuery(const std::string& id) {
  for (const auto& q : TpchCursorQueries()) {
    if (q.id == id) {
      TpchCursorQuery copy = q;
      return copy;
    }
  }
  return Status::NotFound("no TPC-H cursor workload query named " + id);
}

}  // namespace aggify
