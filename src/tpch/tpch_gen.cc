#include "tpch/tpch_gen.h"

#include <array>

#include "types/value.h"

namespace aggify {

namespace {

constexpr std::array<const char*, 5> kRegions = {"AFRICA", "AMERICA", "ASIA",
                                                 "EUROPE", "MIDDLE EAST"};

constexpr std::array<const char*, 25> kNations = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};

constexpr std::array<const char*, 6> kTypePrefix = {"PROMO", "STANDARD",
                                                    "SMALL", "MEDIUM",
                                                    "LARGE", "ECONOMY"};
constexpr std::array<const char*, 5> kTypeMid = {"ANODIZED", "BURNISHED",
                                                 "PLATED", "POLISHED",
                                                 "BRUSHED"};
constexpr std::array<const char*, 5> kTypeSuffix = {"TIN", "NICKEL", "BRASS",
                                                    "STEEL", "COPPER"};
constexpr std::array<const char*, 5> kSegments = {"AUTOMOBILE", "BUILDING",
                                                  "FURNITURE", "MACHINERY",
                                                  "HOUSEHOLD"};

std::string PaddedName(const char* prefix, int64_t key) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s#%09lld", prefix,
                static_cast<long long>(key));
  return buf;
}

Schema RegionSchema() {
  return Schema({Column("r_regionkey", DataType::Int()),
                 Column("r_name", DataType::String(25))});
}

Schema NationSchema() {
  return Schema({Column("n_nationkey", DataType::Int()),
                 Column("n_name", DataType::String(25)),
                 Column("n_regionkey", DataType::Int())});
}

Schema SupplierSchema() {
  return Schema({Column("s_suppkey", DataType::Int()),
                 Column("s_name", DataType::String(25)),
                 Column("s_nationkey", DataType::Int()),
                 Column("s_acctbal", DataType::Decimal(15, 2))});
}

Schema PartSchema() {
  return Schema({Column("p_partkey", DataType::Int()),
                 Column("p_name", DataType::String(55)),
                 Column("p_mfgr", DataType::String(25)),
                 Column("p_type", DataType::String(25)),
                 Column("p_size", DataType::Int()),
                 Column("p_retailprice", DataType::Decimal(15, 2))});
}

Schema PartsuppSchema() {
  return Schema({Column("ps_partkey", DataType::Int()),
                 Column("ps_suppkey", DataType::Int()),
                 Column("ps_availqty", DataType::Int()),
                 Column("ps_supplycost", DataType::Decimal(15, 2))});
}

Schema CustomerSchema() {
  return Schema({Column("c_custkey", DataType::Int()),
                 Column("c_name", DataType::String(25)),
                 Column("c_nationkey", DataType::Int()),
                 Column("c_mktsegment", DataType::String(10)),
                 Column("c_acctbal", DataType::Decimal(15, 2))});
}

Schema OrdersSchema() {
  return Schema({Column("o_orderkey", DataType::Int()),
                 Column("o_custkey", DataType::Int()),
                 Column("o_orderstatus", DataType::String(1)),
                 Column("o_totalprice", DataType::Decimal(15, 2)),
                 Column("o_orderdate", DataType::Date()),
                 Column("o_comment", DataType::String(79))});
}

Schema LineitemSchema() {
  return Schema({Column("l_orderkey", DataType::Int()),
                 Column("l_partkey", DataType::Int()),
                 Column("l_suppkey", DataType::Int()),
                 Column("l_linenumber", DataType::Int()),
                 Column("l_quantity", DataType::Decimal(15, 2)),
                 Column("l_extendedprice", DataType::Decimal(15, 2)),
                 Column("l_discount", DataType::Decimal(15, 2)),
                 Column("l_tax", DataType::Decimal(15, 2)),
                 Column("l_returnflag", DataType::String(1)),
                 Column("l_shipdate", DataType::Date()),
                 Column("l_commitdate", DataType::Date()),
                 Column("l_receiptdate", DataType::Date())});
}

}  // namespace

Status PopulateTpch(Database* db, const TpchConfig& config) {
  Catalog& catalog = db->catalog();
  Random rng(config.seed);
  // No I/O accounting during load: the paper measures warm-cache queries.
  IoStats* no_stats = nullptr;

  // region / nation.
  ASSIGN_OR_RETURN(Table * region, catalog.CreateTable("region", RegionSchema()));
  for (size_t i = 0; i < kRegions.size(); ++i) {
    RETURN_NOT_OK(region->Insert(
        {Value::Int(static_cast<int64_t>(i)), Value::String(kRegions[i])},
        no_stats));
  }
  ASSIGN_OR_RETURN(Table * nation, catalog.CreateTable("nation", NationSchema()));
  for (size_t i = 0; i < kNations.size(); ++i) {
    RETURN_NOT_OK(nation->Insert({Value::Int(static_cast<int64_t>(i)),
                                  Value::String(kNations[i]),
                                  Value::Int(static_cast<int64_t>(i % 5))},
                                 no_stats));
  }

  // supplier.
  const int64_t num_suppliers = config.num_suppliers();
  ASSIGN_OR_RETURN(Table * supplier,
                   catalog.CreateTable("supplier", SupplierSchema()));
  for (int64_t k = 1; k <= num_suppliers; ++k) {
    RETURN_NOT_OK(supplier->Insert(
        {Value::Int(k), Value::String(PaddedName("Supplier", k)),
         Value::Int(rng.UniformRange(0, 24)),
         Value::Double(static_cast<double>(rng.UniformRange(-99999, 999999)) /
                       100.0)},
        no_stats));
  }

  // part.
  const int64_t num_parts = config.num_parts();
  ASSIGN_OR_RETURN(Table * part, catalog.CreateTable("part", PartSchema()));
  for (int64_t k = 1; k <= num_parts; ++k) {
    std::string type = std::string(kTypePrefix[rng.Uniform(6)]) + " " +
                       kTypeMid[rng.Uniform(5)] + " " +
                       kTypeSuffix[rng.Uniform(5)];
    double retail =
        (90000.0 + static_cast<double>((k / 10) % 20001) +
         100.0 * static_cast<double>(k % 1000)) / 100.0;
    RETURN_NOT_OK(part->Insert(
        {Value::Int(k), Value::String(PaddedName("Part", k)),
         Value::String("Manufacturer#" + std::to_string(1 + k % 5)),
         Value::String(type), Value::Int(rng.UniformRange(1, 50)),
         Value::Double(retail)},
        no_stats));
  }

  // partsupp: 4 suppliers per part (dbgen's formula, simplified).
  ASSIGN_OR_RETURN(Table * partsupp,
                   catalog.CreateTable("partsupp", PartsuppSchema()));
  for (int64_t k = 1; k <= num_parts; ++k) {
    for (int64_t i = 0; i < 4; ++i) {
      int64_t suppkey =
          (k + i * (num_suppliers / 4 + (k - 1) / num_suppliers)) %
              num_suppliers + 1;
      RETURN_NOT_OK(partsupp->Insert(
          {Value::Int(k), Value::Int(suppkey),
           Value::Int(rng.UniformRange(1, 9999)),
           Value::Double(static_cast<double>(rng.UniformRange(100, 100000)) /
                         100.0)},
          no_stats));
    }
  }

  // customer.
  const int64_t num_customers = config.num_customers();
  ASSIGN_OR_RETURN(Table * customer,
                   catalog.CreateTable("customer", CustomerSchema()));
  for (int64_t k = 1; k <= num_customers; ++k) {
    RETURN_NOT_OK(customer->Insert(
        {Value::Int(k), Value::String(PaddedName("Customer", k)),
         Value::Int(rng.UniformRange(0, 24)),
         Value::String(kSegments[rng.Uniform(5)]),
         Value::Double(static_cast<double>(rng.UniformRange(-99999, 999999)) /
                       100.0)},
        no_stats));
  }

  // orders + lineitem.
  const int64_t num_orders = config.num_orders();
  ASSIGN_OR_RETURN(Table * orders, catalog.CreateTable("orders", OrdersSchema()));
  ASSIGN_OR_RETURN(Table * lineitem,
                   catalog.CreateTable("lineitem", LineitemSchema()));
  const Date epoch = MakeDate(1992, 1, 1);
  for (int64_t k = 1; k <= num_orders; ++k) {
    int64_t custkey = rng.UniformRange(1, num_customers);
    Date orderdate{epoch.days + static_cast<int32_t>(rng.Uniform(2406))};
    // ~10% of comments mention special requests (the Q13 filter).
    std::string comment = rng.OneIn(10)
                              ? "customer had special requests for packaging"
                              : "regular order " + rng.AlphaString(12);
    int64_t num_lines = rng.UniformRange(1, 7);
    double total = 0;
    for (int64_t line = 1; line <= num_lines; ++line) {
      double qty = static_cast<double>(rng.UniformRange(1, 50));
      double price = static_cast<double>(rng.UniformRange(90000, 10000000)) /
                     100.0;
      double discount =
          static_cast<double>(rng.UniformRange(0, 10)) / 100.0;
      double tax = static_cast<double>(rng.UniformRange(0, 8)) / 100.0;
      Date shipdate{orderdate.days + static_cast<int32_t>(rng.UniformRange(1, 121))};
      Date commitdate{orderdate.days +
                      static_cast<int32_t>(rng.UniformRange(30, 90))};
      Date receiptdate{shipdate.days +
                       static_cast<int32_t>(rng.UniformRange(1, 30))};
      total += price;
      RETURN_NOT_OK(lineitem->Insert(
          {Value::Int(k), Value::Int(rng.UniformRange(1, num_parts)),
           Value::Int(rng.UniformRange(1, num_suppliers)), Value::Int(line),
           Value::Double(qty), Value::Double(price), Value::Double(discount),
           Value::Double(tax),
           Value::String(rng.OneIn(4) ? "R" : (rng.OneIn(2) ? "A" : "N")),
           Value::FromDate(shipdate), Value::FromDate(commitdate),
           Value::FromDate(receiptdate)},
          no_stats));
    }
    RETURN_NOT_OK(orders->Insert(
        {Value::Int(k), Value::Int(custkey),
         Value::String(rng.OneIn(2) ? "O" : "F"), Value::Double(total),
         Value::FromDate(orderdate), Value::String(comment)},
        no_stats));
  }

  if (config.create_paper_indexes) {
    RETURN_NOT_OK(lineitem->CreateIndex("idx_l_orderkey", "l_orderkey"));
    RETURN_NOT_OK(lineitem->CreateIndex("idx_l_suppkey", "l_suppkey"));
    RETURN_NOT_OK(orders->CreateIndex("idx_o_custkey", "o_custkey"));
    RETURN_NOT_OK(partsupp->CreateIndex("idx_ps_partkey", "ps_partkey"));
    // Join-side lookups used throughout the workload.
    RETURN_NOT_OK(supplier->CreateIndex("idx_s_suppkey", "s_suppkey"));
    RETURN_NOT_OK(part->CreateIndex("idx_p_partkey", "p_partkey"));
  }
  return Status::OK();
}

}  // namespace aggify
