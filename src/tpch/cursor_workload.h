// The TPC-H cursor-loop workload of §10.1: specifications of TPC-H queries
// Q2, Q13, Q14, Q18, Q19, Q21 implemented with cursor loops (UDF + driver
// query), exactly the structure the paper benchmarks in Fig. 9(a)/Table 2.
#pragma once

#include <string>
#include <vector>

#include "procedural/session.h"

namespace aggify {

struct TpchCursorQuery {
  std::string id;           ///< "Q2", "Q13", ...
  std::string description;
  std::vector<std::string> udf_names;  ///< UDFs the driver invokes
  std::string udf_sql;                 ///< CREATE FUNCTION statements
  std::string driver_sql;              ///< the query that runs the workload
  /// Whether Froid UDF inlining applies on top of Aggify ("Aggify+"):
  /// multi-variable V_term loops (Q14, Q19) are not inlinable.
  bool froid_applicable = true;
};

/// The six workload queries.
const std::vector<TpchCursorQuery>& TpchCursorQueries();

/// Registers all workload UDFs with the session's database.
Status RegisterTpchCursorWorkload(Session* session);

/// Returns the workload query with the given id. Errors: NotFound.
Result<TpchCursorQuery> GetTpchCursorQuery(const std::string& id);

}  // namespace aggify
