// The aggregation contract of §3.1: Init / Accumulate / Terminate / Merge.
//
// Custom aggregates (including the ones Aggify synthesizes) and the built-in
// aggregates all implement this interface; the executor's aggregation
// operators are agnostic to which kind they drive.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/schema.h"

namespace aggify {

class ExecContext;   // exec/exec_context.h
class ColumnVector;  // exec/batch.h

/// \brief Per-group mutable state of one aggregate evaluation.
/// Concrete aggregates subclass this; the operators only move it around.
class AggregateState {
 public:
  virtual ~AggregateState() = default;
};

/// \brief An aggregate function implementing the four-method contract.
///
/// Thread-compatible: the function object itself is immutable after
/// registration; all mutable evaluation state lives in AggregateState.
class AggregateFunction {
 public:
  virtual ~AggregateFunction() = default;

  virtual const std::string& name() const = 0;

  /// Number of arguments Accumulate expects; -1 for COUNT(*)-style zero/any.
  virtual int arity() const = 0;

  /// (1) Init: creates the per-group state. Invoked once per group. Field
  /// initialization that depends on runtime values is deferred to the first
  /// Accumulate call (§5.2) — Init takes no arguments by contract.
  virtual Result<std::unique_ptr<AggregateState>> Init() const = 0;

  /// (2) Accumulate: folds one qualifying tuple into the state. `ctx` gives
  /// synthesized aggregates access to the session (nested queries, temp
  /// tables); built-ins ignore it.
  virtual Status Accumulate(AggregateState* state,
                            const std::vector<Value>& args,
                            ExecContext* ctx) const = 0;

  /// (2') AccumulateBatch: folds a batch of tuples — `args[a]` is the column
  /// holding argument a for every row, `sel` the selected row indices in
  /// ascending order (nullptr = rows 0..count-1). Contract: observationally
  /// identical to calling Accumulate once per selected row in order —
  /// including floating-point accumulation order, so results stay
  /// bit-identical between the row and batch pipelines. The default re-boxes
  /// rows and delegates to Accumulate; built-ins override with the
  /// type-specialized kernels of fold_kernels.h.
  virtual Status AccumulateBatch(AggregateState* state,
                                 const std::vector<const ColumnVector*>& args,
                                 const int32_t* sel, int64_t count,
                                 ExecContext* ctx) const;

  /// (3) Terminate: produces the final value (a Record for multi-variable
  /// V_term tuples).
  virtual Result<Value> Terminate(AggregateState* state,
                                  ExecContext* ctx) const = 0;

  /// (4) Merge: combines a partially-accumulated `other` into `state`
  /// (parallel execution). Optional by contract.
  virtual Status Merge(AggregateState* state, AggregateState* other,
                       ExecContext* ctx) const {
    AGGIFY_UNUSED(state);
    AGGIFY_UNUSED(other);
    AGGIFY_UNUSED(ctx);
    return Status::NotSupported("aggregate '" + name() +
                                "' does not implement Merge");
  }

  /// True if Merge is implemented and the aggregate is deterministic
  /// (order-insensitive), so parallel partial aggregation is legal.
  virtual bool SupportsMerge() const { return false; }

  /// True if results depend on input order (e.g. a synthesized aggregate
  /// for an ORDER BY cursor). Such aggregates must run under a streaming
  /// aggregate fed by a Sort (Eq. 6) and must not be parallelized.
  virtual bool IsOrderSensitive() const { return false; }

  /// True if Accumulate/Terminate never re-enter the engine (no nested
  /// queries, no UDF calls through the session hooks). The plan cache and
  /// the procedural interpreter are single-threaded, so only parallel-safe
  /// aggregates may run on worker threads. Distinct from SupportsMerge():
  /// a decomposable fold whose body still issues a query merges fine but
  /// must stay on the coordinator thread.
  virtual bool ParallelSafe() const { return false; }
};

/// \brief Creates the built-in aggregate for `name` (min/max/sum/count/avg,
/// count with is_star). Errors: NotFound for unknown names.
Result<std::shared_ptr<const AggregateFunction>> MakeBuiltinAggregate(
    const std::string& name);

/// \brief Creates the zero-argument COUNT(*) aggregate.
Result<std::shared_ptr<const AggregateFunction>> MakeCountStarAggregate();

/// True if `name` is a built-in aggregate.
bool IsBuiltinAggregateName(const std::string& name);

}  // namespace aggify
