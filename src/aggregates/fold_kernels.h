// Type-specialized fold kernels for the vectorized aggregation path.
//
// Each kernel visits the selected rows of one unboxed column in ascending
// row order, skipping NULLs via the validity bitmap. They are required to be
// observationally identical to the row-at-a-time ScalarState updates in
// builtin_aggregates.cc; in particular:
//   * SumInto accumulates into the caller's running double sequentially —
//     no reassociation, no SIMD — so floating-point results are bit-identical
//     to the row pipeline (and UBSan-clean: sums never do int64 arithmetic).
//   * The min/max kernels use strict comparisons, so the first-seen value
//     wins ties exactly like the row path's Compare(v, state) < 0 replace.
#pragma once

#include <cstdint>

#include "exec/batch.h"

namespace aggify {
namespace fold {

/// Non-NULL count over the selection. `sel` lists the selected row indices
/// (nullptr = rows 0..count-1); precondition: col.tag() != kGeneric.
int64_t CountValid(const ColumnVector& col, const int32_t* sel, int64_t count);

/// Adds every selected non-NULL value to *sum (ints widen per element, like
/// Value::AsDouble). Returns the number of values accumulated.
int64_t SumInto(const ColumnVector& col, const int32_t* sel, int64_t count,
                double* sum);

/// Running extremum over an int64 column. On entry *have says whether *best
/// holds a prior value from this column; on exit they cover the selection.
/// Returns the non-NULL count.
int64_t MinMaxInt64(const ColumnVector& col, const int32_t* sel, int64_t count,
                    bool want_min, bool* have, int64_t* best);

/// Running extremum over a double column (same contract as MinMaxInt64).
int64_t MinMaxDouble(const ColumnVector& col, const int32_t* sel, int64_t count,
                     bool want_min, bool* have, double* best);

}  // namespace fold
}  // namespace aggify
