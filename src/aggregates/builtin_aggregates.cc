// Built-in aggregates: MIN, MAX, SUM, COUNT, COUNT(*), AVG.
//
// All are deterministic and implement Merge, so they are legal under both
// hash and streaming aggregation and under parallel partial aggregation.
#include "aggregates/aggregate_function.h"

#include "aggregates/fold_kernels.h"
#include "common/string_util.h"
#include "exec/batch.h"

namespace aggify {

namespace {

struct ScalarState : AggregateState {
  Value value;            // running min/max/sum
  int64_t count = 0;      // rows seen (non-null for column aggregates)
  double sum = 0.0;       // for AVG
  bool sum_is_int = true;
};

enum class BuiltinKind { kMin, kMax, kSum, kCount, kCountStar, kAvg };

class BuiltinAggregate : public AggregateFunction {
 public:
  BuiltinAggregate(std::string name, BuiltinKind kind)
      : name_(std::move(name)), kind_(kind) {}

  const std::string& name() const override { return name_; }

  int arity() const override {
    return kind_ == BuiltinKind::kCountStar ? 0 : 1;
  }

  Result<std::unique_ptr<AggregateState>> Init() const override {
    return std::make_unique<ScalarState>();
  }

  Status Accumulate(AggregateState* state, const std::vector<Value>& args,
                    ExecContext* /*ctx*/) const override {
    auto* s = static_cast<ScalarState*>(state);
    if (kind_ == BuiltinKind::kCountStar) {
      ++s->count;
      return Status::OK();
    }
    if (args.size() != 1) {
      return Status::ExecutionError("aggregate '" + name_ +
                                    "' expects one argument");
    }
    const Value& v = args[0];
    if (v.is_null()) return Status::OK();  // SQL: NULLs ignored
    switch (kind_) {
      case BuiltinKind::kCount:
        ++s->count;
        break;
      case BuiltinKind::kMin:
      case BuiltinKind::kMax: {
        if (s->count == 0) {
          s->value = v;
        } else {
          ASSIGN_OR_RETURN(Value cmp, Compare(v, s->value));
          bool replace = kind_ == BuiltinKind::kMin ? cmp.int_value() < 0
                                                    : cmp.int_value() > 0;
          if (replace) s->value = v;
        }
        ++s->count;
        break;
      }
      case BuiltinKind::kSum:
      case BuiltinKind::kAvg: {
        if (!v.is_numeric()) {
          return Status::TypeError(name_ + " over non-numeric value " +
                                   v.ToString());
        }
        s->sum += v.AsDouble();
        if (!v.is_int()) s->sum_is_int = false;
        ++s->count;
        break;
      }
      case BuiltinKind::kCountStar:
        break;
    }
    return Status::OK();
  }

  Status AccumulateBatch(AggregateState* state,
                         const std::vector<const ColumnVector*>& args,
                         const int32_t* sel, int64_t count,
                         ExecContext* ctx) const override {
    auto* s = static_cast<ScalarState*>(state);
    if (kind_ == BuiltinKind::kCountStar) {
      s->count += count;
      return Status::OK();
    }
    if (args.size() != 1) {
      return Status::ExecutionError("aggregate '" + name_ +
                                    "' expects one argument");
    }
    const ColumnVector& col = *args[0];
    // Mixed/non-numeric columns stay boxed; the row-at-a-time default
    // preserves exact semantics (type errors, sum_is_int tracking).
    if (col.tag() == ColumnVector::Tag::kGeneric) {
      return AggregateFunction::AccumulateBatch(state, args, sel, count, ctx);
    }
    switch (kind_) {
      case BuiltinKind::kCount:
        s->count += fold::CountValid(col, sel, count);
        break;
      case BuiltinKind::kSum:
      case BuiltinKind::kAvg: {
        const int64_t n = fold::SumInto(col, sel, count, &s->sum);
        if (n > 0 && col.tag() == ColumnVector::Tag::kDouble) {
          s->sum_is_int = false;
        }
        s->count += n;
        break;
      }
      case BuiltinKind::kMin:
      case BuiltinKind::kMax: {
        const bool want_min = kind_ == BuiltinKind::kMin;
        int64_t n = 0;
        bool have = false;
        Value column_best;
        if (col.tag() == ColumnVector::Tag::kInt64) {
          int64_t best = 0;
          n = fold::MinMaxInt64(col, sel, count, want_min, &have, &best);
          if (have) column_best = Value::Int(best);
        } else {
          double best = 0.0;
          n = fold::MinMaxDouble(col, sel, count, want_min, &have, &best);
          if (have) column_best = Value::Double(best);
        }
        if (have) {
          // Fold the column extremum into the state exactly like the row
          // path: strict compare, prior value wins ties.
          if (s->count == 0) {
            s->value = std::move(column_best);
          } else {
            ASSIGN_OR_RETURN(Value cmp, Compare(column_best, s->value));
            bool replace = want_min ? cmp.int_value() < 0 : cmp.int_value() > 0;
            if (replace) s->value = std::move(column_best);
          }
        }
        s->count += n;
        break;
      }
      case BuiltinKind::kCountStar:
        break;
    }
    return Status::OK();
  }

  Result<Value> Terminate(AggregateState* state,
                          ExecContext* /*ctx*/) const override {
    auto* s = static_cast<ScalarState*>(state);
    switch (kind_) {
      case BuiltinKind::kCount:
      case BuiltinKind::kCountStar:
        return Value::Int(s->count);
      case BuiltinKind::kMin:
      case BuiltinKind::kMax:
        return s->count == 0 ? Value::Null() : s->value;
      case BuiltinKind::kSum:
        if (s->count == 0) return Value::Null();
        if (s->sum_is_int) return Value::Int(static_cast<int64_t>(s->sum));
        return Value::Double(s->sum);
      case BuiltinKind::kAvg:
        if (s->count == 0) return Value::Null();
        return Value::Double(s->sum / static_cast<double>(s->count));
    }
    return Status::Internal("unreachable");
  }

  Status Merge(AggregateState* state, AggregateState* other,
               ExecContext* /*ctx*/) const override {
    auto* a = static_cast<ScalarState*>(state);
    auto* b = static_cast<ScalarState*>(other);
    switch (kind_) {
      case BuiltinKind::kCount:
      case BuiltinKind::kCountStar:
        a->count += b->count;
        break;
      case BuiltinKind::kMin:
      case BuiltinKind::kMax: {
        if (b->count == 0) break;
        if (a->count == 0) {
          a->value = b->value;
        } else {
          ASSIGN_OR_RETURN(Value cmp, Compare(b->value, a->value));
          bool replace = kind_ == BuiltinKind::kMin ? cmp.int_value() < 0
                                                    : cmp.int_value() > 0;
          if (replace) a->value = b->value;
        }
        a->count += b->count;
        break;
      }
      case BuiltinKind::kSum:
      case BuiltinKind::kAvg:
        a->sum += b->sum;
        a->sum_is_int = a->sum_is_int && b->sum_is_int;
        a->count += b->count;
        break;
    }
    return Status::OK();
  }

  bool SupportsMerge() const override { return true; }

  // Built-ins fold plain values; they never re-enter the engine.
  bool ParallelSafe() const override { return true; }

 private:
  std::string name_;
  BuiltinKind kind_;
};

}  // namespace

bool IsBuiltinAggregateName(const std::string& name) {
  std::string n = ToLower(name);
  return n == "min" || n == "max" || n == "sum" || n == "count" ||
         n == "avg" || n == "count_big";
}

Result<std::shared_ptr<const AggregateFunction>> MakeBuiltinAggregate(
    const std::string& name) {
  std::string n = ToLower(name);
  if (n == "min") {
    return std::make_shared<const BuiltinAggregate>("min", BuiltinKind::kMin);
  }
  if (n == "max") {
    return std::make_shared<const BuiltinAggregate>("max", BuiltinKind::kMax);
  }
  if (n == "sum") {
    return std::make_shared<const BuiltinAggregate>("sum", BuiltinKind::kSum);
  }
  if (n == "count" || n == "count_big") {
    return std::make_shared<const BuiltinAggregate>("count",
                                                    BuiltinKind::kCount);
  }
  if (n == "avg") {
    return std::make_shared<const BuiltinAggregate>("avg", BuiltinKind::kAvg);
  }
  return Status::NotFound("no built-in aggregate named '" + name + "'");
}

/// Separate factory for COUNT(*) (zero-argument form).
Result<std::shared_ptr<const AggregateFunction>> MakeCountStarAggregate() {
  return std::make_shared<const BuiltinAggregate>("count",
                                                  BuiltinKind::kCountStar);
}

}  // namespace aggify
