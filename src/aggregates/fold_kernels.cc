#include "aggregates/fold_kernels.h"

#include "aggregates/aggregate_function.h"
#include "exec/batch.h"

namespace aggify {

// Default batch accumulation: re-box each selected row and fold it through
// the scalar Accumulate. Every aggregate — including the interpreted Agg_Δ
// functions Aggify synthesizes — accepts batch input through this path;
// built-ins override AccumulateBatch with the kernels below.
Status AggregateFunction::AccumulateBatch(
    AggregateState* state, const std::vector<const ColumnVector*>& args,
    const int32_t* sel, int64_t count, ExecContext* ctx) const {
  std::vector<Value> row_args(args.size());
  for (int64_t k = 0; k < count; ++k) {
    const int64_t i = sel != nullptr ? sel[k] : k;
    for (size_t a = 0; a < args.size(); ++a) {
      row_args[a] = args[a]->GetValue(i);
    }
    RETURN_NOT_OK(Accumulate(state, row_args, ctx));
  }
  return Status::OK();
}

namespace fold {

int64_t CountValid(const ColumnVector& col, const int32_t* sel,
                   int64_t count) {
  const NullBitmap& valid = col.validity();
  if (sel == nullptr && count == valid.size()) return valid.CountValid();
  int64_t n = 0;
  for (int64_t k = 0; k < count; ++k) {
    const int64_t i = sel != nullptr ? sel[k] : k;
    if (valid.IsValid(i)) ++n;
  }
  return n;
}

int64_t SumInto(const ColumnVector& col, const int32_t* sel, int64_t count,
                double* sum) {
  const NullBitmap& valid = col.validity();
  int64_t n = 0;
  double acc = *sum;
  if (col.tag() == ColumnVector::Tag::kInt64) {
    const std::vector<int64_t>& data = col.i64();
    for (int64_t k = 0; k < count; ++k) {
      const int64_t i = sel != nullptr ? sel[k] : k;
      if (!valid.IsValid(i)) continue;
      acc += static_cast<double>(data[static_cast<size_t>(i)]);
      ++n;
    }
  } else {
    const std::vector<double>& data = col.f64();
    for (int64_t k = 0; k < count; ++k) {
      const int64_t i = sel != nullptr ? sel[k] : k;
      if (!valid.IsValid(i)) continue;
      acc += data[static_cast<size_t>(i)];
      ++n;
    }
  }
  *sum = acc;
  return n;
}

int64_t MinMaxInt64(const ColumnVector& col, const int32_t* sel, int64_t count,
                    bool want_min, bool* have, int64_t* best) {
  const NullBitmap& valid = col.validity();
  const std::vector<int64_t>& data = col.i64();
  int64_t n = 0;
  for (int64_t k = 0; k < count; ++k) {
    const int64_t i = sel != nullptr ? sel[k] : k;
    if (!valid.IsValid(i)) continue;
    const int64_t v = data[static_cast<size_t>(i)];
    if (!*have) {
      *have = true;
      *best = v;
    } else if (want_min ? v < *best : v > *best) {
      *best = v;
    }
    ++n;
  }
  return n;
}

int64_t MinMaxDouble(const ColumnVector& col, const int32_t* sel, int64_t count,
                     bool want_min, bool* have, double* best) {
  const NullBitmap& valid = col.validity();
  const std::vector<double>& data = col.f64();
  int64_t n = 0;
  for (int64_t k = 0; k < count; ++k) {
    const int64_t i = sel != nullptr ? sel[k] : k;
    if (!valid.IsValid(i)) continue;
    const double v = data[static_cast<size_t>(i)];
    if (!*have) {
      *have = true;
      *best = v;
    } else if (want_min ? v < *best : v > *best) {
      *best = v;
    }
    ++n;
  }
  return n;
}

}  // namespace fold
}  // namespace aggify
