#include "procedural/interpreter.h"

#include "common/failpoint.h"
#include "exec/eval.h"
#include "storage/table.h"

namespace aggify {

Result<Value> Interpreter::CallFunction(const FunctionDef& def,
                                        const std::vector<Value>& args,
                                        ExecContext& ctx) {
  if (args.size() > def.params.size()) {
    return Status::ExecutionError(
        "function " + def.name + " takes " +
        std::to_string(def.params.size()) + " parameters, got " +
        std::to_string(args.size()));
  }
  if (ctx.depth > ExecContext::kMaxDepth) {
    return Status::ExecutionError("call stack too deep in " + def.name);
  }
  VariableEnv env;  // fresh, unchained: UDFs see only their own locals
  for (size_t i = 0; i < def.params.size(); ++i) {
    Value v;
    if (i < args.size()) {
      v = args[i];
    } else if (def.params[i].default_value != nullptr) {
      ASSIGN_OR_RETURN(v, EvalExpr(*def.params[i].default_value, ctx));
    } else {
      return Status::ExecutionError("missing argument '" + def.params[i].name +
                                    "' in call to " + def.name);
    }
    env.Declare(def.params[i].name, std::move(v));
  }
  env.Declare("@@fetch_status", Value::Int(-1));

  CallFrame frame;
  frame.env = &env;
  frame.in_function = true;

  ExecContext local = ctx;
  local.set_vars(&env);
  local.set_frame(nullptr);  // UDF bodies are not correlated to outer rows
  ++local.depth;

  auto flow = ExecBlockStmts(*def.body, &frame, local);
  Status cleanup = CleanupFrame(&frame, local);
  RETURN_NOT_OK(flow.status());
  RETURN_NOT_OK(cleanup);

  if (!def.is_procedure && !frame.return_value.is_null()) {
    return frame.return_value.CastTo(def.return_type.id);
  }
  return frame.return_value;
}

Result<Value> Interpreter::ExecuteBlock(const BlockStmt& block,
                                        VariableEnv* env, ExecContext& ctx) {
  if (!env->Has("@@fetch_status")) {
    env->Declare("@@fetch_status", Value::Int(-1));
  }
  CallFrame frame;
  frame.env = env;
  ExecContext local = ctx;
  local.set_vars(env);
  auto flow = ExecBlockStmts(block, &frame, local);
  Status cleanup = CleanupFrame(&frame, local);
  RETURN_NOT_OK(flow.status());
  RETURN_NOT_OK(cleanup);
  return frame.return_value;
}

Result<Interpreter::LoopBodyOutcome> Interpreter::ExecuteLoopBody(
    const BlockStmt& block, VariableEnv* env, ExecContext& ctx) {
  // Hot path: called once per accumulated row. Swap the variable scope in
  // place instead of copying the context.
  CallFrame frame;
  frame.env = env;
  VariableEnv* saved = ctx.vars();
  ctx.set_vars(env);
  auto flow = ExecBlockStmts(block, &frame, ctx);
  Status cleanup = CleanupFrame(&frame, ctx);
  ctx.set_vars(saved);
  RETURN_NOT_OK(flow.status());
  RETURN_NOT_OK(cleanup);
  switch (*flow) {
    case Flow::kBreak:
      return LoopBodyOutcome::kBreak;
    case Flow::kReturn:
      return Status::NotSupported(
          "RETURN inside an aggregated cursor-loop body");
    default:
      return LoopBodyOutcome::kCompleted;
  }
}

Status Interpreter::CleanupFrame(CallFrame* frame, ExecContext& ctx) {
  for (auto& [name, cursor] : frame->cursors) {
    if (cursor.worktable != nullptr) {
      ctx.catalog().DropTempTable(cursor.worktable_name);
    }
  }
  frame->cursors.clear();
  for (const std::string& t : frame->temp_tables) {
    ctx.catalog().DropTempTable(t);
  }
  frame->temp_tables.clear();
  return Status::OK();
}

Result<Interpreter::Flow> Interpreter::ExecBlockStmts(const BlockStmt& block,
                                                      CallFrame* frame,
                                                      ExecContext& ctx) {
  for (const auto& stmt : block.statements) {
    ASSIGN_OR_RETURN(Flow flow, ExecStmt(*stmt, frame, ctx));
    if (flow != Flow::kNormal) return flow;
  }
  return Flow::kNormal;
}

Result<Interpreter::Flow> Interpreter::ExecStmt(const Stmt& stmt,
                                                CallFrame* frame,
                                                ExecContext& ctx) {
  switch (stmt.kind) {
    case StmtKind::kBlock:
      return ExecBlockStmts(static_cast<const BlockStmt&>(stmt), frame, ctx);

    case StmtKind::kDeclareVar: {
      const auto& d = static_cast<const DeclareVarStmt&>(stmt);
      Value v;
      if (d.initializer != nullptr) {
        ASSIGN_OR_RETURN(v, EvalExpr(*d.initializer, ctx));
        ASSIGN_OR_RETURN(v, v.CastTo(d.type.id));
      }
      frame->env->Declare(d.name, std::move(v));
      return Flow::kNormal;
    }

    case StmtKind::kSet: {
      const auto& s = static_cast<const SetStmt&>(stmt);
      ASSIGN_OR_RETURN(Value v, EvalExpr(*s.value, ctx));
      if (!frame->env->Has(s.name)) {
        return Status::ExecutionError("SET of undeclared variable " + s.name);
      }
      RETURN_NOT_OK(frame->env->Set(s.name, std::move(v)));
      return Flow::kNormal;
    }

    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      ASSIGN_OR_RETURN(bool cond, EvalPredicate(*i.condition, ctx));
      if (cond) return ExecStmt(*i.then_branch, frame, ctx);
      if (i.else_branch != nullptr) {
        return ExecStmt(*i.else_branch, frame, ctx);
      }
      return Flow::kNormal;
    }

    case StmtKind::kWhile: {
      const auto& w = static_cast<const WhileStmt&>(stmt);
      for (;;) {
        // Per-iteration interrupt check: a loop whose body never runs a
        // query (pure variable arithmetic) must still honor deadlines.
        RETURN_NOT_OK(ctx.CheckInterrupts());
        ASSIGN_OR_RETURN(bool cond, EvalPredicate(*w.condition, ctx));
        if (!cond) break;
        ASSIGN_OR_RETURN(Flow flow, ExecStmt(*w.body, frame, ctx));
        if (flow == Flow::kBreak) break;
        if (flow == Flow::kReturn) return flow;
        // kContinue and kNormal both re-test the condition.
      }
      return Flow::kNormal;
    }

    case StmtKind::kFor: {
      const auto& f = static_cast<const ForStmt&>(stmt);
      ASSIGN_OR_RETURN(Value init, EvalExpr(*f.init, ctx));
      frame->env->Declare(f.var, init);
      for (;;) {
        RETURN_NOT_OK(ctx.CheckInterrupts());
        ASSIGN_OR_RETURN(Value cur, frame->env->Get(f.var));
        ASSIGN_OR_RETURN(Value bound, EvalExpr(*f.bound, ctx));
        ASSIGN_OR_RETURN(Value le, Le(cur, bound));
        if (le.is_null() || !le.bool_value()) break;
        ASSIGN_OR_RETURN(Flow flow, ExecStmt(*f.body, frame, ctx));
        if (flow == Flow::kBreak) break;
        if (flow == Flow::kReturn) return flow;
        Value step = Value::Int(1);
        if (f.step != nullptr) {
          ASSIGN_OR_RETURN(step, EvalExpr(*f.step, ctx));
        }
        ASSIGN_OR_RETURN(cur, frame->env->Get(f.var));
        ASSIGN_OR_RETURN(Value next, Add(cur, step));
        RETURN_NOT_OK(frame->env->Set(f.var, std::move(next)));
      }
      return Flow::kNormal;
    }

    case StmtKind::kDeclareCursor: {
      const auto& d = static_cast<const DeclareCursorStmt&>(stmt);
      CursorState state;
      state.query = d.query.get();
      frame->cursors[d.name] = std::move(state);
      return Flow::kNormal;
    }

    case StmtKind::kOpenCursor:
      RETURN_NOT_OK(ExecOpen(static_cast<const OpenCursorStmt&>(stmt), frame,
                             ctx));
      return Flow::kNormal;

    case StmtKind::kFetch:
      RETURN_NOT_OK(ExecFetch(static_cast<const FetchStmt&>(stmt), frame, ctx));
      return Flow::kNormal;

    case StmtKind::kCloseCursor: {
      const auto& c = static_cast<const CloseCursorStmt&>(stmt);
      auto it = frame->cursors.find(c.name);
      if (it == frame->cursors.end()) {
        return Status::ExecutionError("CLOSE of unknown cursor " + c.name);
      }
      if (it->second.worktable != nullptr) {
        ctx.catalog().DropTempTable(it->second.worktable_name);
        it->second.worktable = nullptr;
      }
      it->second.open = false;
      return Flow::kNormal;
    }

    case StmtKind::kDeallocateCursor: {
      const auto& d = static_cast<const DeallocateCursorStmt&>(stmt);
      auto it = frame->cursors.find(d.name);
      if (it != frame->cursors.end()) {
        if (it->second.worktable != nullptr) {
          ctx.catalog().DropTempTable(it->second.worktable_name);
        }
        frame->cursors.erase(it);
      }
      return Flow::kNormal;
    }

    case StmtKind::kReturn: {
      const auto& r = static_cast<const ReturnStmt&>(stmt);
      if (r.value != nullptr) {
        ASSIGN_OR_RETURN(frame->return_value, EvalExpr(*r.value, ctx));
      }
      return Flow::kReturn;
    }

    case StmtKind::kBreak:
      return Flow::kBreak;
    case StmtKind::kContinue:
      return Flow::kContinue;

    case StmtKind::kDeclareTempTable: {
      const auto& d = static_cast<const DeclareTempTableStmt&>(stmt);
      // Re-declaration (e.g. inside a loop) resets the table.
      ctx.catalog().DropTempTable(d.name);
      ASSIGN_OR_RETURN(Table * t,
                       ctx.catalog().CreateTempTable(d.name, d.schema));
      AGGIFY_UNUSED(t);
      frame->temp_tables.push_back(d.name);
      return Flow::kNormal;
    }

    case StmtKind::kInsert:
      RETURN_NOT_OK(ExecInsert(static_cast<const InsertStmt&>(stmt), frame,
                               ctx));
      return Flow::kNormal;

    case StmtKind::kUpdate:
      RETURN_NOT_OK(ExecUpdate(static_cast<const UpdateStmt&>(stmt), *frame,
                               ctx));
      return Flow::kNormal;

    case StmtKind::kDelete:
      RETURN_NOT_OK(ExecDelete(static_cast<const DeleteStmt&>(stmt), *frame,
                               ctx));
      return Flow::kNormal;

    case StmtKind::kTryCatch: {
      const auto& tc = static_cast<const TryCatchStmt&>(stmt);
      auto flow = ExecStmt(*tc.try_block, frame, ctx);
      if (flow.ok()) return *flow;
      Status err = flow.status();
      // Internal errors indicate library bugs: do not swallow them.
      if (err.code() == StatusCode::kInternal) return err;
      return ExecStmt(*tc.catch_block, frame, ctx);
    }

    case StmtKind::kExecQuery: {
      const auto& q = static_cast<const ExecQueryStmt&>(stmt);
      ASSIGN_OR_RETURN(QueryResult result, RunQuery(*q.query, ctx));
      OnQueryResult(result);
      return Flow::kNormal;
    }

    case StmtKind::kMultiAssign:
      RETURN_NOT_OK(ExecMultiAssign(static_cast<const MultiAssignStmt&>(stmt),
                                    frame, ctx));
      return Flow::kNormal;

    case StmtKind::kGuardedRewrite:
      return ExecGuardedRewrite(static_cast<const GuardedRewriteStmt&>(stmt),
                                frame, ctx);
  }
  return Status::Internal("unhandled statement kind");
}

Status Interpreter::ExecOpen(const OpenCursorStmt& open, CallFrame* frame,
                             ExecContext& ctx) {
  auto it = frame->cursors.find(open.name);
  if (it == frame->cursors.end()) {
    return Status::ExecutionError("OPEN of undeclared cursor " + open.name);
  }
  CursorState& cursor = it->second;
  if (cursor.open) {
    return Status::ExecutionError("cursor " + open.name + " is already open");
  }
  // §2.3: execute the query and materialize the result into a worktable.
  ASSIGN_OR_RETURN(QueryResult result, RunCursorQuery(*cursor.query, ctx));
  cursor.schema = result.schema;
  cursor.worktable_name =
      "#cursor_" + open.name + "_" + std::to_string(ctx.db()->NextObjectId());
  ASSIGN_OR_RETURN(cursor.worktable, ctx.catalog().CreateTempTable(
                                         cursor.worktable_name, result.schema));
  for (auto& row : result.rows) {
    RETURN_NOT_OK(cursor.worktable->Insert(std::move(row), &ctx.stats()));
  }
  cursor.position = 0;
  cursor.last_page = -1;
  cursor.open = true;
  ++ctx.stats().cursors_opened;
  return Status::OK();
}

Status Interpreter::ExecFetch(const FetchStmt& fetch, CallFrame* frame,
                              ExecContext& ctx) {
  auto it = frame->cursors.find(fetch.cursor);
  if (it == frame->cursors.end()) {
    return Status::ExecutionError("FETCH from undeclared cursor " +
                                  fetch.cursor);
  }
  CursorState& cursor = it->second;
  if (!cursor.open) {
    return Status::ExecutionError("FETCH from closed cursor " + fetch.cursor);
  }
  // Cursor loops are the paper's pathological case — thousands of FETCHes
  // per invocation — so this is the interpreter's interrupt granularity.
  AGGIFY_FAILPOINT_SLEEP("exec.slow_operator");
  RETURN_NOT_OK(ctx.CheckInterrupts());
  ++ctx.stats().cursor_fetches;
  if (cursor.position >= cursor.worktable->num_rows()) {
    RETURN_NOT_OK(frame->env->Set("@@fetch_status", Value::Int(-1)));
    return Status::OK();
  }
  const Row& row = cursor.worktable->ReadRow(cursor.position++,
                                             &cursor.last_page, &ctx.stats());
  if (fetch.into.size() > row.size()) {
    return Status::ExecutionError(
        "FETCH INTO has more variables than cursor columns");
  }
  RETURN_NOT_OK(OnCursorFetch(cursor.schema, row));
  for (size_t i = 0; i < fetch.into.size(); ++i) {
    if (!frame->env->Has(fetch.into[i])) {
      return Status::ExecutionError("FETCH INTO undeclared variable " +
                                    fetch.into[i]);
    }
    RETURN_NOT_OK(frame->env->Set(fetch.into[i], row[i]));
  }
  RETURN_NOT_OK(frame->env->Set("@@fetch_status", Value::Int(0)));
  return Status::OK();
}

Status Interpreter::ExecInsert(const InsertStmt& ins, CallFrame* frame,
                               ExecContext& ctx) {
  ASSIGN_OR_RETURN(Table * table, ctx.catalog().GetTable(ins.table));
  if (frame->in_function && !table->is_worktable()) {
    return Status::ExecutionError(
        "INSERT into persistent table '" + ins.table +
        "' is not allowed inside a function");
  }

  // Column mapping: explicit list or full schema order.
  std::vector<size_t> target_cols;
  if (ins.columns.empty()) {
    for (size_t i = 0; i < table->schema().num_columns(); ++i) {
      target_cols.push_back(i);
    }
  } else {
    for (const auto& c : ins.columns) {
      ASSIGN_OR_RETURN(size_t idx, table->schema().IndexOf(c));
      target_cols.push_back(idx);
    }
  }

  auto insert_row = [&](const Row& src) -> Status {
    if (src.size() != target_cols.size()) {
      return Status::ExecutionError("INSERT arity mismatch on " + ins.table);
    }
    Row full(table->schema().num_columns(), Value::Null());
    for (size_t i = 0; i < target_cols.size(); ++i) {
      full[target_cols[i]] = src[i];
    }
    return table->Insert(std::move(full), &ctx.stats());
  };

  if (ins.select != nullptr) {
    ASSIGN_OR_RETURN(QueryResult result, RunQuery(*ins.select, ctx));
    for (const Row& r : result.rows) RETURN_NOT_OK(insert_row(r));
    return Status::OK();
  }
  for (const auto& value_row : ins.values_rows) {
    Row r;
    r.reserve(value_row.size());
    for (const auto& e : value_row) {
      ASSIGN_OR_RETURN(Value v, EvalExpr(*e, ctx));
      r.push_back(std::move(v));
    }
    RETURN_NOT_OK(insert_row(r));
  }
  return Status::OK();
}

Status Interpreter::ExecUpdate(const UpdateStmt& upd, const CallFrame& frame,
                               ExecContext& ctx) {
  ASSIGN_OR_RETURN(Table * table, ctx.catalog().GetTable(upd.table));
  if (frame.in_function && !table->is_worktable()) {
    return Status::ExecutionError(
        "UPDATE of persistent table '" + upd.table +
        "' is not allowed inside a function");
  }
  const Schema& schema = table->schema();
  std::vector<std::pair<size_t, const Expr*>> sets;
  for (const auto& [col, e] : upd.assignments) {
    ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(col));
    sets.emplace_back(idx, e.get());
  }
  Status inner = Status::OK();
  RETURN_NOT_OK(table->UpdateWhere(
      [&](const Row& row) {
        if (!inner.ok()) return false;
        if (upd.where == nullptr) return true;
        RowFrame frame{&row, &schema, ctx.frame()};
        ExecContext local = ctx.WithFrame(&frame);
        auto pass = EvalPredicate(*upd.where, local);
        if (!pass.ok()) {
          inner = pass.status();
          return false;
        }
        return *pass;
      },
      [&](Row* row) -> Status {
        RowFrame frame{row, &schema, ctx.frame()};
        ExecContext local = ctx.WithFrame(&frame);
        Row updated = *row;
        for (const auto& [idx, e] : sets) {
          ASSIGN_OR_RETURN(Value v, EvalExpr(*e, local));
          updated[idx] = std::move(v);
        }
        *row = std::move(updated);
        return Status::OK();
      },
      &ctx.stats()));
  return inner;
}

Status Interpreter::ExecDelete(const DeleteStmt& del, const CallFrame& frame,
                               ExecContext& ctx) {
  ASSIGN_OR_RETURN(Table * table, ctx.catalog().GetTable(del.table));
  if (frame.in_function && !table->is_worktable()) {
    return Status::ExecutionError(
        "DELETE from persistent table '" + del.table +
        "' is not allowed inside a function");
  }
  const Schema& schema = table->schema();
  Status inner = Status::OK();
  table->DeleteWhere(
      [&](const Row& row) {
        if (!inner.ok()) return false;
        if (del.where == nullptr) return true;
        RowFrame frame{&row, &schema, ctx.frame()};
        ExecContext local = ctx.WithFrame(&frame);
        auto pass = EvalPredicate(*del.where, local);
        if (!pass.ok()) {
          inner = pass.status();
          return false;
        }
        return *pass;
      },
      &ctx.stats());
  return inner;
}

Status Interpreter::ExecMultiAssign(const MultiAssignStmt& ma, CallFrame* frame,
                                    ExecContext& ctx) {
  ASSIGN_OR_RETURN(QueryResult result, RunQuery(*ma.query, ctx));
  ASSIGN_OR_RETURN(Value v, result.ScalarValue());
  if (v.is_null()) {
    // Zero-iteration loop: targets keep their prior values.
    return Status::OK();
  }
  if (v.is_record()) {
    const auto& fields = v.record_value();
    if (fields.size() != ma.targets.size()) {
      return Status::ExecutionError(
          "aggregate returned " + std::to_string(fields.size()) +
          " values for " + std::to_string(ma.targets.size()) + " targets");
    }
    for (size_t i = 0; i < ma.targets.size(); ++i) {
      RETURN_NOT_OK(frame->env->Set(ma.targets[i], fields[i]));
    }
    return Status::OK();
  }
  if (ma.targets.size() != 1) {
    return Status::ExecutionError(
        "scalar aggregate result for multiple assignment targets");
  }
  return frame->env->Set(ma.targets[0], std::move(v));
}

namespace {

/// A failed rewritten query falls back to the loop unless the failure is an
/// invariant violation (library bug) — mirroring TRY/CATCH, which also
/// refuses to swallow Internal errors — or a cancellation: the caller asked
/// the whole invocation to stop, so re-running the work as a cursor loop
/// would defy them. Timeouts and memory exhaustion stay eligible (the
/// interpreted loop holds less state than a set-oriented plan and may
/// finish within budget).
bool FallbackEligible(const Status& st) {
  return st.code() != StatusCode::kInternal &&
         st.code() != StatusCode::kCancelled;
}

}  // namespace

Result<Interpreter::Flow> Interpreter::ExecGuardedRewrite(
    const GuardedRewriteStmt& g, CallFrame* frame, ExecContext& ctx) {
  // Snapshot the loop-entry values of everything either path may write, so
  // the fallback (and verify mode) replays the loop from a clean slate.
  // ExecMultiAssign only touches the env after its query succeeds, but the
  // snapshot is still needed: verify mode runs both paths, and a failure
  // *after* partial Record assignment would otherwise leak.
  std::map<std::string, Value> saved;
  for (const auto& name : g.state_vars) {
    if (!frame->env->Has(name)) continue;
    ASSIGN_OR_RETURN(Value v, frame->env->Get(name));
    saved.emplace(name, std::move(v));
  }
  auto restore = [&]() -> Status {
    for (const auto& [name, v] : saved) {
      RETURN_NOT_OK(frame->env->Set(name, v));
    }
    return Status::OK();
  };

  // DML-form rewrites (INSERT..SELECT / set-oriented UPDATE from the
  // table-effect families) mutate a persistent table instead of assigning
  // variables: snapshot the target's rows too, so fallback and verify can
  // replay the loop against the pre-statement table state.
  Table* dml_table = nullptr;
  std::vector<Row> dml_snapshot;
  if (g.rewritten_dml != nullptr) {
    std::string target;
    switch (g.rewritten_dml->kind) {
      case StmtKind::kInsert:
        target = static_cast<const InsertStmt&>(*g.rewritten_dml).table;
        break;
      case StmtKind::kUpdate:
        target = static_cast<const UpdateStmt&>(*g.rewritten_dml).table;
        break;
      case StmtKind::kDelete:
        target = static_cast<const DeleteStmt&>(*g.rewritten_dml).table;
        break;
      default:
        return Status::Internal("guarded DML rewrite wraps a non-DML statement");
    }
    ASSIGN_OR_RETURN(dml_table, ctx.catalog().GetTable(target));
    dml_snapshot = dml_table->SnapshotRows();
  }
  auto exec_rewritten = [&]() -> Status {
    if (g.rewritten_dml != nullptr) {
      ASSIGN_OR_RETURN(Flow f, ExecStmt(*g.rewritten_dml, frame, ctx));
      AGGIFY_UNUSED(f);  // DML statements always flow normally
      return Status::OK();
    }
    return ExecMultiAssign(*g.rewritten, frame, ctx);
  };

  Status rewritten_st = exec_rewritten();

  if (!g.verify) {
    if (rewritten_st.ok()) return Flow::kNormal;
    if (!FallbackEligible(rewritten_st)) return rewritten_st;
    RobustnessStats& stats = ctx.robustness();
    ++stats.rewrite_exec_failures;
    ++stats.fallbacks_taken;
    RETURN_NOT_OK(restore());
    // A failed set-oriented DML may have applied a prefix of its writes;
    // rewind the table before the loop replays them.
    if (dml_table != nullptr) dml_table->RestoreRows(dml_snapshot);
    ASSIGN_OR_RETURN(Flow flow, ExecBlockStmts(*g.fallback, frame, ctx));
    ++stats.fallback_successes;
    return flow;
  }

  // verify_rewrite mode: always run both paths and compare the targets. The
  // loop's results are authoritative (they end up in the env either way).
  RobustnessStats& stats = ctx.robustness();
  ++stats.verify_runs;
  if (!rewritten_st.ok() && !FallbackEligible(rewritten_st)) {
    return rewritten_st;
  }
  std::vector<Value> rewritten_out;
  std::vector<Row> rewritten_rows;
  if (rewritten_st.ok()) {
    if (g.rewritten_dml != nullptr) {
      rewritten_rows = dml_table->SnapshotRows();
    } else {
      for (const auto& t : g.rewritten->targets) {
        ASSIGN_OR_RETURN(Value v, frame->env->Get(t));
        rewritten_out.push_back(std::move(v));
      }
    }
  } else {
    ++stats.rewrite_exec_failures;
  }
  RETURN_NOT_OK(restore());
  if (dml_table != nullptr) dml_table->RestoreRows(dml_snapshot);
  ASSIGN_OR_RETURN(Flow flow, ExecBlockStmts(*g.fallback, frame, ctx));
  bool mismatch = !rewritten_st.ok();
  if (rewritten_st.ok() && g.rewritten_dml != nullptr) {
    // Bit-identity over the written table: same row count, same values in
    // the same order (the loop's rows are authoritative and stay in place).
    std::vector<Row> loop_rows = dml_table->SnapshotRows();
    if (loop_rows.size() != rewritten_rows.size()) {
      mismatch = true;
    } else {
      for (size_t i = 0; !mismatch && i < loop_rows.size(); ++i) {
        if (loop_rows[i].size() != rewritten_rows[i].size()) {
          mismatch = true;
          break;
        }
        for (size_t j = 0; j < loop_rows[i].size(); ++j) {
          if (!loop_rows[i][j].StructurallyEquals(rewritten_rows[i][j])) {
            mismatch = true;
            break;
          }
        }
      }
    }
  }
  for (size_t i = 0;
       rewritten_st.ok() && g.rewritten_dml == nullptr &&
       i < g.rewritten->targets.size();
       ++i) {
    ASSIGN_OR_RETURN(Value loop_v, frame->env->Get(g.rewritten->targets[i]));
    if (!loop_v.StructurallyEquals(rewritten_out[i])) {
      mismatch = true;
      break;
    }
  }
  if (mismatch) ++stats.verify_mismatches;
  return flow;
}

}  // namespace aggify
