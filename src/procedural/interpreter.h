// Tree-walking interpreter for UDFs, stored procedures, and anonymous
// procedural blocks — the paper's baseline execution model.
//
// Cursor semantics follow §2.3: OPEN executes the cursor query and
// materializes its result into a temp worktable (charging worktable page
// writes); FETCH NEXT reads rows back one at a time (charging worktable page
// reads) and sets @@FETCH_STATUS; CLOSE/DEALLOCATE drop the worktable. This
// is precisely the overhead Aggify eliminates.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "parser/statement.h"
#include "plan/query_engine.h"

namespace aggify {

class Interpreter {
 public:
  /// With a null engine, nested queries run through the context's installed
  /// subquery executor instead (how the synthesized aggregates execute their
  /// loop bodies without a module cycle).
  explicit Interpreter(const QueryEngine* engine = nullptr)
      : engine_(engine) {}
  virtual ~Interpreter() = default;

  const QueryEngine* engine() const { return engine_; }

  /// Outcome of one loop-body execution inside a synthesized aggregate.
  enum class LoopBodyOutcome {
    kCompleted,  ///< ran to the end (or hit CONTINUE)
    kBreak,      ///< hit BREAK: the aggregate stops accumulating
  };

  /// \brief Executes a cursor-loop body Δ on behalf of a synthesized
  /// aggregate's Accumulate(). RETURN inside Δ is an error (the
  /// applicability check rejects such loops).
  Result<LoopBodyOutcome> ExecuteLoopBody(const BlockStmt& block,
                                          VariableEnv* env, ExecContext& ctx);

  /// \brief Invokes a function/procedure: binds parameters (applying
  /// declared defaults for missing trailing arguments), executes the body,
  /// and returns the RETURN value (NULL for procedures without RETURN).
  Result<Value> CallFunction(const FunctionDef& def,
                             const std::vector<Value>& args, ExecContext& ctx);

  /// \brief Executes a statement block against an existing environment
  /// (anonymous blocks / client programs). The environment persists, so the
  /// caller can inspect variables afterwards. Returns the RETURN value if
  /// the block executed RETURN <expr>, else NULL.
  Result<Value> ExecuteBlock(const BlockStmt& block, VariableEnv* env,
                             ExecContext& ctx);

 protected:
  // --- Hooks the client/ layer overrides to model the network (§10.6). ---

  /// Executes the cursor-defining query at OPEN.
  virtual Result<QueryResult> RunCursorQuery(const SelectStmt& query,
                                             ExecContext& ctx) {
    if (engine_ != nullptr) return engine_->Execute(query, ctx);
    return ctx.ExecuteSubquery(query);
  }

  /// Called for each row delivered through FETCH. A non-OK status aborts the
  /// FETCH (the client layer surfaces exhausted-retry failures here).
  virtual Status OnCursorFetch(const Schema& schema, const Row& row) {
    AGGIFY_UNUSED(schema);
    AGGIFY_UNUSED(row);
    return Status::OK();
  }

  /// Called when a standalone SELECT's results are delivered to the program.
  virtual void OnQueryResult(const QueryResult& result) {
    AGGIFY_UNUSED(result);
  }

  /// Executes a non-cursor query statement (standalone SELECT, the query of
  /// INSERT..SELECT, a MultiAssign query). The client layer adds round-trip
  /// costs here.
  virtual Result<QueryResult> RunQuery(const SelectStmt& query,
                                       ExecContext& ctx) {
    if (engine_ != nullptr) return engine_->Execute(query, ctx);
    return ctx.ExecuteSubquery(query);
  }

 private:
  enum class Flow { kNormal, kBreak, kContinue, kReturn };

  struct CursorState {
    const SelectStmt* query = nullptr;
    std::string worktable_name;
    Table* worktable = nullptr;
    Schema schema;
    int64_t position = 0;
    int64_t last_page = -1;
    bool open = false;
  };

  struct CallFrame {
    VariableEnv* env;
    /// True inside a UDF/procedure body: persistent-table DML is rejected
    /// (§4.1 — functions cannot modify persistent state; this is what makes
    /// every UDF cursor loop Theorem 4.2-rewritable).
    bool in_function = false;
    std::map<std::string, CursorState> cursors;
    std::vector<std::string> temp_tables;  // physical names to drop
    Value return_value;
  };

  Result<Flow> ExecStmt(const Stmt& stmt, CallFrame* frame, ExecContext& ctx);
  Result<Flow> ExecBlockStmts(const BlockStmt& block, CallFrame* frame,
                              ExecContext& ctx);
  Status ExecFetch(const FetchStmt& fetch, CallFrame* frame, ExecContext& ctx);
  Status ExecOpen(const OpenCursorStmt& open, CallFrame* frame,
                  ExecContext& ctx);
  Status ExecInsert(const InsertStmt& ins, CallFrame* frame, ExecContext& ctx);
  Status ExecUpdate(const UpdateStmt& upd, const CallFrame& frame,
                    ExecContext& ctx);
  Status ExecDelete(const DeleteStmt& del, const CallFrame& frame,
                    ExecContext& ctx);
  Status ExecMultiAssign(const MultiAssignStmt& ma, CallFrame* frame,
                         ExecContext& ctx);
  Result<Flow> ExecGuardedRewrite(const GuardedRewriteStmt& g, CallFrame* frame,
                                  ExecContext& ctx);
  Status CleanupFrame(CallFrame* frame, ExecContext& ctx);

  const QueryEngine* engine_;
};

}  // namespace aggify
