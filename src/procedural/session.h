// Session: the single-caller convenience wrapper over one EngineService —
// what examples, tests, benches, and the Aggify driver use when they don't
// need multi-client session management (the server does; see
// procedural/service.h and src/server/).
//
// The heavy lifting — catalog ownership, the shared QueryEngine, the
// interpreter, context wiring — lives in EngineService; Session adds only
// the historical one-caller entry points (RunScript, Query, Call, RunBlock)
// with their invocation-scoped limits.
#pragma once

#include "parser/parser.h"
#include "procedural/service.h"

namespace aggify {

class Session {
 public:
  /// Creates a session over `db`. The session does not own the database.
  explicit Session(Database* db, const EngineOptions& options = {})
      : service_(db, options) {}

  Database* db() const { return service_.db(); }
  const QueryEngine& engine() const { return service_.engine(); }
  Interpreter& interpreter() { return service_.interpreter(); }
  EngineService& service() { return service_; }

  /// Installs a different interpreter (e.g. the client/ remote interpreter).
  /// The session keeps using it for UDF invocation and block execution.
  void SetInterpreter(std::unique_ptr<Interpreter> interp) {
    service_.set_interpreter(std::move(interp));
  }

  /// \brief Builds an ExecContext wired with both hooks (subquery executor
  /// and UDF invoker) — delegates to the one context factory.
  ExecContext MakeContext() { return service_.MakeContext(); }

  /// \brief Runs a full script: CREATE TABLE/INDEX/FUNCTION, INSERT, SELECT
  /// and anonymous blocks. Results of top-level SELECTs are returned in
  /// order.
  Result<std::vector<QueryResult>> RunScript(const Script& script) {
    return service_.RunScript(script);
  }

  /// Parses and runs a script.
  Result<std::vector<QueryResult>> RunSql(const std::string& sql) {
    return service_.RunSql(sql);
  }

  /// \brief Executes one SELECT.
  Result<QueryResult> Query(const std::string& sql);

  /// \brief Calls a registered function by name.
  Result<Value> Call(const std::string& name, const std::vector<Value>& args);

  /// \brief Executes an anonymous block against a fresh environment and
  /// returns it (for inspecting variables).
  Result<std::shared_ptr<VariableEnv>> RunBlock(const std::string& sql);

 private:
  EngineService service_;
};

}  // namespace aggify
