// Session: the top-level user-facing handle — a Database plus a QueryEngine
// plus an Interpreter, wired so queries can call UDFs and UDF bodies can run
// queries. This is what examples, tests, benches, and the Aggify driver use.
#pragma once

#include "parser/parser.h"
#include "procedural/interpreter.h"

namespace aggify {

class Session {
 public:
  /// Creates a session over `db`. The session does not own the database.
  explicit Session(Database* db, const EngineOptions& options = {});

  Database* db() const { return db_; }
  const QueryEngine& engine() const { return engine_; }
  Interpreter& interpreter() { return *interpreter_; }

  /// Installs a different interpreter (e.g. the client/ remote interpreter).
  /// The session keeps using it for UDF invocation and block execution.
  void SetInterpreter(std::unique_ptr<Interpreter> interp);

  /// \brief Builds an ExecContext wired with both hooks (subquery executor
  /// and UDF invoker).
  ExecContext MakeContext();

  /// \brief Runs a full script: CREATE TABLE/INDEX/FUNCTION, INSERT, SELECT
  /// and anonymous blocks. Results of top-level SELECTs are returned in
  /// order.
  Result<std::vector<QueryResult>> RunScript(const Script& script);

  /// Parses and runs a script.
  Result<std::vector<QueryResult>> RunSql(const std::string& sql);

  /// \brief Executes one SELECT.
  Result<QueryResult> Query(const std::string& sql);

  /// \brief Calls a registered function by name.
  Result<Value> Call(const std::string& name, const std::vector<Value>& args);

  /// \brief Executes an anonymous block against a fresh environment and
  /// returns it (for inspecting variables).
  Result<std::shared_ptr<VariableEnv>> RunBlock(const std::string& sql);

 private:
  Database* db_;
  QueryEngine engine_;
  std::unique_ptr<Interpreter> interpreter_;
};

}  // namespace aggify
