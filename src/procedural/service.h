// EngineService + ClientSession: the service-grade split of the old Session
// (PR 10 API redesign, docs/SERVER.md).
//
// The old Session conflated three roles: ownership of the shared engine
// state (catalog, plan cache, admission gate, interpreter), per-invocation
// state (variable environments, deadlines), and the execution entry points.
// That was fine for one caller; a server multiplexing many clients needs
// the roles separated:
//
//   EngineService  — ONE per database: the QueryEngine (shared concurrent
//                    plan cache + admission gate), the interpreter, and the
//                    bootstrap path that loads DDL/data. After Bootstrap the
//                    catalog is treated as immutable; everything the service
//                    exposes from then on is safe to share across threads.
//   ClientSession  — MANY, cheap (one options copy + counters): a client's
//                    handle with per-session EngineOptions overrides, a
//                    private IoStats (the shared Database counters are not
//                    atomic), and a session MemoryAccountant every query and
//                    cursor of the session charges into.
//
// Session (session.h) remains as the single-caller convenience wrapper over
// one EngineService — existing tests, benches, and tools keep working.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "parser/parser.h"
#include "procedural/context_factory.h"
#include "procedural/interpreter.h"

namespace aggify {

/// \brief One deadline / memory budget per user-level invocation. Installed
/// before the interpreter runs, so every statement a procedure body executes
/// — cursor FETCHes, rewritten aggregates, fallback loops — draws down the
/// same clock and the same byte budget instead of each getting a fresh one.
/// Plain SELECTs through Session::Query need no help here: QueryEngine
/// installs a root QueryContext itself when none is present.
class ScopedInvocationLimits {
 public:
  ScopedInvocationLimits(const EngineOptions& options, ExecContext* ctx) {
    const auto& limits = options.limits;
    if (ctx->query_context() == nullptr &&
        (limits.timeout_ms > 0 || limits.memory_limit_bytes > 0)) {
      qc_.emplace(limits.timeout_ms, limits.memory_limit_bytes,
                  &ctx->robustness());
      ctx->set_query_context(&*qc_);
      ctx_ = ctx;
    }
  }
  ~ScopedInvocationLimits() {
    if (ctx_ != nullptr) ctx_->set_query_context(nullptr);
  }
  ScopedInvocationLimits(const ScopedInvocationLimits&) = delete;
  ScopedInvocationLimits& operator=(const ScopedInvocationLimits&) = delete;

 private:
  std::optional<QueryContext> qc_;
  ExecContext* ctx_ = nullptr;
};

class EngineService {
 public:
  /// Creates the shared service over `db` (not owned). `options` are the
  /// engine-wide defaults; sessions override per-session.
  explicit EngineService(Database* db, const EngineOptions& options = {});

  Database* db() const { return db_; }
  const QueryEngine& engine() const { return engine_; }
  Interpreter& interpreter() { return *interpreter_; }
  const EngineOptions& options() const { return engine_.options(); }

  /// Installs a different interpreter (e.g. the client-side remote
  /// interpreter). Single-threaded phase only — sessions capture the
  /// interpreter pointer in their context hooks.
  void set_interpreter(std::unique_ptr<Interpreter> interp);

  /// \brief One fully wired ExecContext (context_factory.h): subquery
  /// executor through the shared engine, UDF invoker through the shared
  /// interpreter.
  ExecContext MakeContext() const;

  /// \brief Bootstrap: runs a full script (CREATE TABLE/INDEX/FUNCTION,
  /// INSERT, SELECT, anonymous blocks). DDL mutates the catalog, so this is
  /// the single-threaded loading phase — finish before serving sessions.
  Result<std::vector<QueryResult>> RunScript(const Script& script);

  /// Parses and runs a bootstrap script.
  Result<std::vector<QueryResult>> RunSql(const std::string& sql);

 private:
  Database* db_;
  QueryEngine engine_;
  std::unique_ptr<Interpreter> interpreter_;
};

/// \brief A cheap per-client handle over a shared EngineService. Not
/// thread-safe itself (one client drives one session); different sessions
/// are safe concurrently — they share only the thread-safe pieces (plan
/// cache, admission gate, robustness counters, parent accountants) and keep
/// private IoStats.
class ClientSession {
 public:
  /// `options` are this session's effective EngineOptions (plan-affecting
  /// fields key the shared plan cache via PlanFingerprint, so two sessions
  /// with identical options share plans). The session accountant's limit is
  /// `options.limits.session_memory_limit_bytes` (0 = track only).
  ClientSession(EngineService* service, const EngineOptions& options,
                uint64_t id = 0);

  uint64_t id() const { return id_; }
  EngineService* service() const { return service_; }
  const EngineOptions& options() const { return options_; }
  IoStats& io_stats() { return io_stats_; }
  const IoStats& io_stats() const { return io_stats_; }
  /// Every query and cursor of this session charges its memory here (via a
  /// per-invocation QueryContext chained to this parent).
  MemoryAccountant& accountant() { return accountant_; }

  /// \brief A fully wired context that accounts I/O into this session's
  /// private counters instead of the shared (non-atomic) Database ones.
  ExecContext MakeContext();

  /// \brief One-shot SELECT under this session's options: admission,
  /// deadline, memory budget (chained to the session accountant), the
  /// degradation ladder, and the shared plan cache all apply.
  Result<QueryResult> Query(const std::string& sql);

  /// \brief Opens an incremental-fetch cursor over a SELECT (DECLARE). A
  /// positive `deadline_ms` bounds the cursor's whole lifetime (it wins
  /// over the session's per-statement timeout); the cursor's plan state is
  /// charged to the session accountant and released on close/eviction.
  Result<std::unique_ptr<QueryCursor>> Declare(const std::string& sql,
                                               int64_t deadline_ms = 0);

  /// Queries executed + rows returned by this session (protocol STATS).
  int64_t queries_served() const { return queries_served_; }
  int64_t rows_served() const { return rows_served_; }

 private:
  /// Builds the per-invocation governance token for this session.
  std::unique_ptr<QueryContext> MakeGovernance(int64_t deadline_ms);

  EngineService* service_;
  EngineOptions options_;
  uint64_t id_;
  IoStats io_stats_;
  MemoryAccountant accountant_;
  int64_t queries_served_ = 0;
  int64_t rows_served_ = 0;
};

}  // namespace aggify
