// The ONE ExecContext factory (PR 10 API redesign).
//
// Before this existed there were two context factories with different
// wiring: QueryEngine::MakeContext installed only the subquery executor,
// and Session::MakeContext additionally installed the UDF invoker. Callers
// that picked the engine's version got contexts that executed nested
// queries fine but failed (or silently skipped) UDF invocation — a
// half-wired context. Every production entry point — Session, ClientSession,
// the server, ClientApp — now builds contexts here, with both hooks wired
// explicitly; the engine's own MakeBaseContext is documented as a building
// block, not an entry point.
#pragma once

#include "plan/query_engine.h"
#include "procedural/interpreter.h"

namespace aggify {

/// \brief Builds a fully wired ExecContext: the subquery executor routes
/// nested SELECTs back through `engine` (admission, limits, plan cache and
/// all), and the UDF invoker routes scalar function calls through
/// `interpreter`. Both referents must outlive every use of the returned
/// context — the hooks capture raw pointers.
///
/// `interpreter` may not be null: a context without a UDF invoker is
/// exactly the half-wired object this factory exists to abolish. Callers
/// that genuinely execute no UDFs still get a working invoker for free.
inline ExecContext MakeWiredContext(const QueryEngine& engine,
                                    Interpreter* interpreter) {
  ExecContext ctx = engine.MakeBaseContext();
  ctx.set_udf_invoker([interpreter](const std::string& name,
                                    const std::vector<Value>& args,
                                    ExecContext& inner) -> Result<Value> {
    ASSIGN_OR_RETURN(auto def, inner.catalog().GetFunction(name));
    return interpreter->CallFunction(*def, args, inner);
  });
  return ctx;
}

}  // namespace aggify
