#include "procedural/service.h"

namespace aggify {

EngineService::EngineService(Database* db, const EngineOptions& options)
    : db_(db),
      engine_(db, options),
      interpreter_(std::make_unique<Interpreter>(&engine_)) {}

void EngineService::set_interpreter(std::unique_ptr<Interpreter> interp) {
  interpreter_ = std::move(interp);
}

ExecContext EngineService::MakeContext() const {
  return MakeWiredContext(engine_, interpreter_.get());
}

Result<std::vector<QueryResult>> EngineService::RunScript(
    const Script& script) {
  std::vector<QueryResult> results;
  for (const auto& cmd : script.commands) {
    switch (cmd.kind) {
      case ScriptCommand::Kind::kCreateTable: {
        ASSIGN_OR_RETURN(Table * t,
                         db_->catalog().CreateTable(cmd.table_name, cmd.schema));
        AGGIFY_UNUSED(t);
        break;
      }
      case ScriptCommand::Kind::kCreateIndex: {
        ASSIGN_OR_RETURN(Table * t, db_->catalog().GetTable(cmd.on_table));
        RETURN_NOT_OK(t->CreateIndex(cmd.index_name, cmd.on_column));
        break;
      }
      case ScriptCommand::Kind::kCreateFunction:
        db_->catalog().RegisterFunction(cmd.function->name, cmd.function);
        break;
      case ScriptCommand::Kind::kInsert: {
        ExecContext ctx = MakeContext();
        ScopedInvocationLimits limits(engine_.options(), &ctx);
        VariableEnv env;
        ctx.set_vars(&env);
        BlockStmt wrapper;
        wrapper.statements.push_back(cmd.statement->Clone());
        ASSIGN_OR_RETURN(Value v,
                         interpreter_->ExecuteBlock(wrapper, &env, ctx));
        AGGIFY_UNUSED(v);
        break;
      }
      case ScriptCommand::Kind::kSelect: {
        ExecContext ctx = MakeContext();
        VariableEnv env;
        ctx.set_vars(&env);
        ASSIGN_OR_RETURN(QueryResult r, engine_.Execute(*cmd.select, ctx));
        results.push_back(std::move(r));
        break;
      }
      case ScriptCommand::Kind::kBlock: {
        ExecContext ctx = MakeContext();
        ScopedInvocationLimits limits(engine_.options(), &ctx);
        VariableEnv env;
        ctx.set_vars(&env);
        ASSIGN_OR_RETURN(
            Value v,
            interpreter_->ExecuteBlock(
                static_cast<const BlockStmt&>(*cmd.statement), &env, ctx));
        AGGIFY_UNUSED(v);
        break;
      }
    }
  }
  return results;
}

Result<std::vector<QueryResult>> EngineService::RunSql(
    const std::string& sql) {
  ASSIGN_OR_RETURN(Script script, ParseScript(sql));
  return RunScript(script);
}

ClientSession::ClientSession(EngineService* service,
                             const EngineOptions& options, uint64_t id)
    : service_(service),
      options_(options),
      id_(id),
      accountant_(options.limits.session_memory_limit_bytes) {}

ExecContext ClientSession::MakeContext() {
  ExecContext ctx = service_->MakeContext();
  ctx.set_stats_override(&io_stats_);
  return ctx;
}

std::unique_ptr<QueryContext> ClientSession::MakeGovernance(
    int64_t deadline_ms) {
  const auto& limits = options_.limits;
  const int64_t timeout =
      deadline_ms > 0 ? deadline_ms : limits.timeout_ms;
  // Always chained to the session accountant: even a session with no
  // per-statement limit tracks (and bounds, if session_memory_limit_bytes
  // is set) the sum of its live executions.
  return std::make_unique<QueryContext>(timeout, limits.memory_limit_bytes,
                                        &service_->db()->robustness(),
                                        &accountant_);
}

Result<QueryResult> ClientSession::Query(const std::string& sql) {
  ASSIGN_OR_RETURN(auto stmt, ParseSelect(sql));
  ExecContext ctx = MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  std::unique_ptr<QueryContext> qc = MakeGovernance(0);
  ctx.set_query_context(qc.get());
  auto result = service_->engine().Execute(*stmt, ctx, &options_);
  if (result.ok()) {
    ++queries_served_;
    rows_served_ += static_cast<int64_t>(result->rows.size());
  }
  return result;
}

Result<std::unique_ptr<QueryCursor>> ClientSession::Declare(
    const std::string& sql, int64_t deadline_ms) {
  ASSIGN_OR_RETURN(auto stmt, ParseSelect(sql));
  ExecContext ctx = MakeContext();
  auto cursor = service_->engine().OpenCursor(*stmt, ctx,
                                              MakeGovernance(deadline_ms),
                                              &options_);
  if (cursor.ok()) ++queries_served_;
  return cursor;
}

}  // namespace aggify
