#include "procedural/session.h"

#include <optional>

#include "parser/parser.h"

namespace aggify {

namespace {

/// \brief One deadline / memory budget per user-level invocation. Installed
/// before the interpreter runs, so every statement a procedure body executes
/// — cursor FETCHes, rewritten aggregates, fallback loops — draws down the
/// same clock and the same byte budget instead of each getting a fresh one.
/// Plain SELECTs through Session::Query need no help here: QueryEngine
/// installs a root QueryContext itself when none is present.
class ScopedInvocationLimits {
 public:
  ScopedInvocationLimits(const EngineOptions& options, ExecContext* ctx) {
    const auto& limits = options.limits;
    if (ctx->query_context() == nullptr &&
        (limits.timeout_ms > 0 || limits.memory_limit_bytes > 0)) {
      qc_.emplace(limits.timeout_ms, limits.memory_limit_bytes,
                  &ctx->robustness());
      ctx->set_query_context(&*qc_);
      ctx_ = ctx;
    }
  }
  ~ScopedInvocationLimits() {
    if (ctx_ != nullptr) ctx_->set_query_context(nullptr);
  }
  ScopedInvocationLimits(const ScopedInvocationLimits&) = delete;
  ScopedInvocationLimits& operator=(const ScopedInvocationLimits&) = delete;

 private:
  std::optional<QueryContext> qc_;
  ExecContext* ctx_ = nullptr;
};

}  // namespace

Session::Session(Database* db, const EngineOptions& options)
    : db_(db),
      engine_(db, options),
      interpreter_(std::make_unique<Interpreter>(&engine_)) {}

void Session::SetInterpreter(std::unique_ptr<Interpreter> interp) {
  interpreter_ = std::move(interp);
}

ExecContext Session::MakeContext() {
  ExecContext ctx = engine_.MakeContext();
  ctx.set_udf_invoker([this](const std::string& name,
                             const std::vector<Value>& args,
                             ExecContext& inner) -> Result<Value> {
    ASSIGN_OR_RETURN(auto def, inner.catalog().GetFunction(name));
    return interpreter_->CallFunction(*def, args, inner);
  });
  return ctx;
}

Result<std::vector<QueryResult>> Session::RunScript(const Script& script) {
  std::vector<QueryResult> results;
  for (const auto& cmd : script.commands) {
    switch (cmd.kind) {
      case ScriptCommand::Kind::kCreateTable: {
        ASSIGN_OR_RETURN(Table * t,
                         db_->catalog().CreateTable(cmd.table_name, cmd.schema));
        AGGIFY_UNUSED(t);
        break;
      }
      case ScriptCommand::Kind::kCreateIndex: {
        ASSIGN_OR_RETURN(Table * t, db_->catalog().GetTable(cmd.on_table));
        RETURN_NOT_OK(t->CreateIndex(cmd.index_name, cmd.on_column));
        break;
      }
      case ScriptCommand::Kind::kCreateFunction:
        db_->catalog().RegisterFunction(cmd.function->name, cmd.function);
        break;
      case ScriptCommand::Kind::kInsert: {
        ExecContext ctx = MakeContext();
        ScopedInvocationLimits limits(engine_.options(), &ctx);
        VariableEnv env;
        ctx.set_vars(&env);
        BlockStmt wrapper;
        wrapper.statements.push_back(cmd.statement->Clone());
        ASSIGN_OR_RETURN(Value v,
                         interpreter_->ExecuteBlock(wrapper, &env, ctx));
        AGGIFY_UNUSED(v);
        break;
      }
      case ScriptCommand::Kind::kSelect: {
        ExecContext ctx = MakeContext();
        VariableEnv env;
        ctx.set_vars(&env);
        ASSIGN_OR_RETURN(QueryResult r, engine_.Execute(*cmd.select, ctx));
        results.push_back(std::move(r));
        break;
      }
      case ScriptCommand::Kind::kBlock: {
        ExecContext ctx = MakeContext();
        ScopedInvocationLimits limits(engine_.options(), &ctx);
        VariableEnv env;
        ctx.set_vars(&env);
        ASSIGN_OR_RETURN(
            Value v,
            interpreter_->ExecuteBlock(
                static_cast<const BlockStmt&>(*cmd.statement), &env, ctx));
        AGGIFY_UNUSED(v);
        break;
      }
    }
  }
  return results;
}

Result<std::vector<QueryResult>> Session::RunSql(const std::string& sql) {
  ASSIGN_OR_RETURN(Script script, ParseScript(sql));
  return RunScript(script);
}

Result<QueryResult> Session::Query(const std::string& sql) {
  ASSIGN_OR_RETURN(auto stmt, ParseSelect(sql));
  ExecContext ctx = MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  return engine_.Execute(*stmt, ctx);
}

Result<Value> Session::Call(const std::string& name,
                            const std::vector<Value>& args) {
  ASSIGN_OR_RETURN(auto def, db_->catalog().GetFunction(name));
  ExecContext ctx = MakeContext();
  ScopedInvocationLimits limits(engine_.options(), &ctx);
  return interpreter_->CallFunction(*def, args, ctx);
}

Result<std::shared_ptr<VariableEnv>> Session::RunBlock(const std::string& sql) {
  ASSIGN_OR_RETURN(StmtPtr block, ParseStatements(sql));
  auto env = std::make_shared<VariableEnv>();
  ExecContext ctx = MakeContext();
  ScopedInvocationLimits limits(engine_.options(), &ctx);
  ctx.set_vars(env.get());
  ASSIGN_OR_RETURN(Value v,
                   interpreter_->ExecuteBlock(
                       static_cast<const BlockStmt&>(*block), env.get(), ctx));
  AGGIFY_UNUSED(v);
  return env;
}

}  // namespace aggify
