#include "procedural/session.h"

namespace aggify {

Result<QueryResult> Session::Query(const std::string& sql) {
  ASSIGN_OR_RETURN(auto stmt, ParseSelect(sql));
  ExecContext ctx = MakeContext();
  VariableEnv env;
  ctx.set_vars(&env);
  return engine().Execute(*stmt, ctx);
}

Result<Value> Session::Call(const std::string& name,
                            const std::vector<Value>& args) {
  ASSIGN_OR_RETURN(auto def, db()->catalog().GetFunction(name));
  ExecContext ctx = MakeContext();
  ScopedInvocationLimits limits(engine().options(), &ctx);
  return interpreter().CallFunction(*def, args, ctx);
}

Result<std::shared_ptr<VariableEnv>> Session::RunBlock(const std::string& sql) {
  ASSIGN_OR_RETURN(StmtPtr block, ParseStatements(sql));
  auto env = std::make_shared<VariableEnv>();
  ExecContext ctx = MakeContext();
  ScopedInvocationLimits limits(engine().options(), &ctx);
  ctx.set_vars(env.get());
  ASSIGN_OR_RETURN(Value v,
                   interpreter().ExecuteBlock(
                       static_cast<const BlockStmt&>(*block), env.get(), ctx));
  AGGIFY_UNUSED(v);
  return env;
}

}  // namespace aggify
