// Control Flow Graph over the procedural statement AST (§3.2).
//
// Following the paper, every simple statement is its own basic block
// (one CFG node). Control statements contribute a condition node plus edges.
// The graph has synthetic entry/exit nodes; function parameters are modeled
// as definitions at the entry node.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "parser/statement.h"

namespace aggify {

enum class CfgNodeKind : uint8_t {
  kEntry,
  kExit,
  kStatement,  ///< a simple statement (SET, FETCH, DECLARE, DML, ...)
  kCondition,  ///< an IF / WHILE / FOR condition evaluation
};

struct CfgNode {
  int id = -1;
  CfgNodeKind kind = CfgNodeKind::kStatement;
  /// Underlying statement; for kCondition this is the IF/WHILE/FOR statement
  /// whose condition the node evaluates. Null for entry/exit.
  const Stmt* stmt = nullptr;
  /// Condition expression for kCondition nodes.
  const Expr* condition = nullptr;

  std::vector<int> successors;
  std::vector<int> predecessors;

  /// Variables this node defines (assigns), lowercase with '@'.
  std::vector<std::string> defs;
  /// Variables this node uses (reads).
  std::vector<std::string> uses;
};

class Cfg {
 public:
  Cfg() = default;
  Cfg(const Cfg&) = delete;
  Cfg& operator=(const Cfg&) = delete;
  Cfg(Cfg&&) = default;
  Cfg& operator=(Cfg&&) = default;
  ~Cfg() {
    if (alive_ != nullptr) *alive_ = false;
  }

  const std::vector<CfgNode>& nodes() const { return nodes_; }
  const CfgNode& node(int id) const { return nodes_[id]; }
  int entry() const { return entry_; }
  int exit() const { return exit_; }
  int size() const { return static_cast<int>(nodes_.size()); }

  /// All node ids whose underlying statement lies in the AST subtree rooted
  /// at `root` (including condition nodes of nested control statements).
  std::vector<int> NodesInSubtree(const Stmt& root) const;

  /// Node ids for a specific statement (a statement has exactly one node;
  /// IF/WHILE/FOR map to their condition node).
  Result<int> NodeFor(const Stmt& stmt) const;

  /// The unique node executed after the loop exits (false-successor of the
  /// loop condition).
  Result<int> LoopExitNode(const WhileStmt& loop) const;

  /// Graphviz rendering for debugging and docs.
  std::string ToDot() const;

  /// Debug lifetime token: flips to false when this CFG is destroyed.
  /// Consumers that cache a `Cfg*` (DataflowResult) keep a copy and assert
  /// on it before dereferencing, turning use-after-free of freed CFG nodes
  /// into a loud debug-build failure.
  std::shared_ptr<const bool> liveness_token() const { return alive_; }

  /// \brief Builds the CFG of a function body.
  /// \param params parameter names treated as definitions at entry.
  static Result<std::unique_ptr<Cfg>> Build(const BlockStmt& body,
                                            const std::vector<std::string>& params);

 private:
  friend class CfgBuilder;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::vector<CfgNode> nodes_;
  int entry_ = -1;
  int exit_ = -1;
  std::map<const Stmt*, int> stmt_to_node_;
  /// False-branch successor of each loop condition node.
  std::map<const Stmt*, int> loop_exit_;
};

/// \brief Variables defined by a simple statement (non-recursive: control
/// statements report nothing; their bodies have their own nodes).
void StatementDefs(const Stmt& stmt, std::vector<std::string>* defs);

/// \brief Variables used by a simple statement (non-recursive). For control
/// statements this reports only the condition's uses.
void StatementUses(const Stmt& stmt, std::vector<std::string>* uses);

}  // namespace aggify
