#include "analysis/early_exit.h"

#include <algorithm>
#include <cstdint>
#include <functional>

namespace aggify {

namespace {

/// Unwraps `{ s; }` single-statement blocks.
const Stmt* SoleStatement(const Stmt& s) {
  if (s.kind != StmtKind::kBlock) return &s;
  const auto& b = static_cast<const BlockStmt&>(s);
  return b.statements.size() == 1 ? b.statements[0].get() : nullptr;
}

void CountKind(const Stmt& stmt, StmtKind kind, int* count) {
  if (stmt.kind == kind) ++*count;
  switch (stmt.kind) {
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
        CountKind(*s, kind, count);
      }
      break;
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      CountKind(*i.then_branch, kind, count);
      if (i.else_branch != nullptr) CountKind(*i.else_branch, kind, count);
      break;
    }
    case StmtKind::kWhile:
      CountKind(*static_cast<const WhileStmt&>(stmt).body, kind, count);
      break;
    case StmtKind::kFor:
      CountKind(*static_cast<const ForStmt&>(stmt).body, kind, count);
      break;
    case StmtKind::kTryCatch: {
      const auto& tc = static_cast<const TryCatchStmt&>(stmt);
      CountKind(*tc.try_block, kind, count);
      CountKind(*tc.catch_block, kind, count);
      break;
    }
    default:
      break;
  }
}

/// Counts SET statements targeting `var` anywhere in the subtree.
void CountWrites(const Stmt& stmt, const std::string& var, int* count) {
  if (stmt.kind == StmtKind::kSet &&
      static_cast<const SetStmt&>(stmt).name == var) {
    ++*count;
  }
  switch (stmt.kind) {
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
        CountWrites(*s, var, count);
      }
      break;
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      CountWrites(*i.then_branch, var, count);
      if (i.else_branch != nullptr) CountWrites(*i.else_branch, var, count);
      break;
    }
    case StmtKind::kWhile:
      CountWrites(*static_cast<const WhileStmt&>(stmt).body, var, count);
      break;
    case StmtKind::kFor:
      CountWrites(*static_cast<const ForStmt&>(stmt).body, var, count);
      break;
    case StmtKind::kTryCatch: {
      const auto& tc = static_cast<const TryCatchStmt&>(stmt);
      CountWrites(*tc.try_block, var, count);
      CountWrites(*tc.catch_block, var, count);
      break;
    }
    default:
      break;
  }
}

/// Matches `@cnt OP K` / `K OP @cnt` where K is an integer literal and OP
/// normalizes to "counter has reached at least the limit". Equality exits
/// are refused: with any start value above K the predicate never fires and
/// the loop legitimately consumes all of Q — no sound static bound exists.
bool MatchExitPredicate(const Expr& cond, std::string* counter,
                        int64_t* limit, std::string* why) {
  if (cond.kind != ExprKind::kBinary) {
    *why = "exit predicate is not a comparison";
    return false;
  }
  const auto& cmp = static_cast<const BinaryExpr&>(cond);
  const Expr* var_side = nullptr;
  const Expr* lit_side = nullptr;
  bool mirrored = false;  // literal OP @cnt
  if (cmp.left->kind == ExprKind::kVarRef &&
      cmp.right->kind == ExprKind::kLiteral) {
    var_side = cmp.left.get();
    lit_side = cmp.right.get();
  } else if (cmp.right->kind == ExprKind::kVarRef &&
             cmp.left->kind == ExprKind::kLiteral) {
    var_side = cmp.right.get();
    lit_side = cmp.left.get();
    mirrored = true;
  } else {
    *why = "exit predicate does not compare a variable with a literal";
    return false;
  }
  const bool reached =
      mirrored ? (cmp.op == BinaryOp::kLe || cmp.op == BinaryOp::kLt)
               : (cmp.op == BinaryOp::kGe || cmp.op == BinaryOp::kGt);
  if (!reached) {
    *why = cmp.op == BinaryOp::kEq
               ? "equality exit is not monotone (a counter already past the "
                 "limit never triggers it)"
               : "exit predicate is not a reached-the-limit comparison";
    return false;
  }
  const Value& k = static_cast<const LiteralExpr&>(*lit_side).value;
  if (!k.is_int()) {
    *why = "exit limit is not an integer literal";
    return false;
  }
  *counter = static_cast<const VarRefExpr&>(*var_side).name;
  *limit = k.int_value();
  // Strict vs. non-strict needs no distinction: the strict form fires at
  // most one iteration later, inside the +2 slack of the bound.
  return true;
}

/// Matches a top-level `SET @cnt = @cnt + s` / `= s + @cnt` with s a
/// positive integer literal. Returns the step or 0.
int64_t MatchIncrement(const Stmt& stmt, const std::string& counter) {
  if (stmt.kind != StmtKind::kSet) return 0;
  const auto& set = static_cast<const SetStmt&>(stmt);
  if (set.name != counter || set.value->kind != ExprKind::kBinary) return 0;
  const auto& bin = static_cast<const BinaryExpr&>(*set.value);
  if (bin.op != BinaryOp::kAdd) return 0;
  auto is_counter = [&](const Expr& e) {
    return e.kind == ExprKind::kVarRef &&
           static_cast<const VarRefExpr&>(e).name == counter;
  };
  const Expr* step_side = nullptr;
  if (is_counter(*bin.left)) {
    step_side = bin.right.get();
  } else if (is_counter(*bin.right)) {
    step_side = bin.left.get();
  }
  if (step_side == nullptr || step_side->kind != ExprKind::kLiteral) return 0;
  const Value& s = static_cast<const LiteralExpr&>(*step_side).value;
  if (!s.is_int() || s.int_value() < 1) return 0;
  return s.int_value();
}

EarlyExitInfo Unproven(std::string reason) {
  EarlyExitInfo info;
  info.has_break = true;
  info.reason = std::move(reason);
  return info;
}

}  // namespace

EarlyExitInfo AnalyzeEarlyExit(const BlockStmt& body,
                               const std::vector<std::string>& fetch_vars) {
  int breaks = 0;
  CountKind(body, StmtKind::kBreak, &breaks);
  if (breaks == 0) return {};
  if (breaks != 1) {
    return Unproven("body has " + std::to_string(breaks) +
                    " BREAK statements");
  }
  int continues = 0;
  CountKind(body, StmtKind::kContinue, &continues);
  if (continues != 0) {
    return Unproven(
        "CONTINUE can skip the counter update, so iterations need not "
        "advance the exit predicate");
  }

  // The single BREAK must be the sole then-branch of a top-level IF with no
  // ELSE; nested placement makes the exit conditional on non-counter state.
  const IfStmt* guard = nullptr;
  for (const auto& s : body.statements) {
    const Stmt* top = SoleStatement(*s);
    if (top == nullptr || top->kind != StmtKind::kIf) continue;
    const auto& iff = static_cast<const IfStmt&>(*top);
    const Stmt* then_s = SoleStatement(*iff.then_branch);
    if (then_s != nullptr && then_s->kind == StmtKind::kBreak) {
      guard = &iff;
      break;
    }
  }
  if (guard == nullptr) {
    return Unproven(
        "BREAK is not the sole then-branch of a top-level IF");
  }
  if (guard->else_branch != nullptr) {
    return Unproven("exit IF has an ELSE branch");
  }

  EarlyExitInfo info;
  info.has_break = true;
  std::string why;
  if (!MatchExitPredicate(*guard->condition, &info.counter, &info.limit,
                          &why)) {
    info.reason = std::move(why);
    return info;
  }
  if (std::find(fetch_vars.begin(), fetch_vars.end(), info.counter) !=
      fetch_vars.end()) {
    info.reason = "exit counter " + info.counter +
                  " is overwritten by FETCH each iteration";
    return info;
  }

  // Exactly one write to the counter, top-level and of the canonical
  // monotone increment form.
  int writes = 0;
  CountWrites(body, info.counter, &writes);
  if (writes != 1) {
    info.reason = "counter " + info.counter + " has " +
                  std::to_string(writes) +
                  " writes in the body; exactly one monotone increment is "
                  "required";
    return info;
  }
  info.step = 0;
  for (const auto& s : body.statements) {
    const Stmt* top = SoleStatement(*s);
    if (top == nullptr) continue;
    int64_t step = MatchIncrement(*top, info.counter);
    if (step > 0) {
      info.step = step;
      break;
    }
  }
  if (info.step <= 0) {
    info.reason =
        "the write to " + info.counter +
        " is not an unconditional top-level `SET " + info.counter + " = " +
        info.counter + " + <positive integer literal>`";
    return info;
  }
  info.bounded = true;
  return info;
}

ExprPtr BuildPrefixBoundExpr(const EarlyExitInfo& info) {
  // CASE WHEN @cnt IS NULL THEN 9223372036854775807
  //      WHEN (K - @cnt) < 1 THEN 2
  //      ELSE (K - @cnt + (s-1)) / s + 2 END
  auto remaining = [&]() {
    return MakeBinary(BinaryOp::kSub, MakeLiteral(Value::Int(info.limit)),
                      MakeVarRef(info.counter));
  };
  std::vector<CaseWhenExpr::Arm> arms;
  arms.push_back(CaseWhenExpr::Arm{
      std::make_unique<IsNullExpr>(MakeVarRef(info.counter), /*neg=*/false),
      MakeLiteral(Value::Int(INT64_MAX))});
  arms.push_back(CaseWhenExpr::Arm{
      MakeBinary(BinaryOp::kLt, remaining(), MakeLiteral(Value::Int(1))),
      MakeLiteral(Value::Int(2))});
  ExprPtr bound = MakeBinary(
      BinaryOp::kAdd,
      MakeBinary(BinaryOp::kDiv,
                 MakeBinary(BinaryOp::kAdd, remaining(),
                            MakeLiteral(Value::Int(info.step - 1))),
                 MakeLiteral(Value::Int(info.step))),
      MakeLiteral(Value::Int(2)));
  return std::make_unique<CaseWhenExpr>(std::move(arms), std::move(bound));
}

}  // namespace aggify
