// Iterative data-flow analyses over the CFG (§3.2.1–3.2.4):
// reaching definitions, live variables, and the UD / DU chains derived
// from them. These are the inputs to Algorithm 1's set computations.
#pragma once

#include <cassert>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.h"

namespace aggify {

/// \brief A definition site: variable `var` is assigned at CFG node `node`.
struct Definition {
  int node;
  std::string var;

  bool operator<(const Definition& o) const {
    return node != o.node ? node < o.node : var < o.var;
  }
  bool operator==(const Definition& o) const {
    return node == o.node && var == o.var;
  }
};

/// \brief A use site: variable `var` is read at CFG node `node`.
struct Use {
  int node;
  std::string var;

  bool operator<(const Use& o) const {
    return node != o.node ? node < o.node : var < o.var;
  }
};

/// \brief Results of running all data-flow analyses to fixpoint on one CFG.
///
/// The object holds a reference to the CFG; it must not outlive it. Debug
/// builds enforce this with the CFG's liveness token: any accessor that
/// would dereference a destroyed CFG asserts instead of reading freed
/// nodes.
class DataflowResult {
 public:
  /// Runs reaching definitions (forward, may-union) and live variables
  /// (backward, may-union) to fixpoint, then materializes UD/DU chains.
  static DataflowResult Run(const Cfg& cfg);

  const Cfg& cfg() const {
    AssertCfgAlive();
    return *cfg_;
  }

  // --- Live variables (§3.2.4) ---
  const std::set<std::string>& LiveIn(int node) const { return live_in_[node]; }
  const std::set<std::string>& LiveOut(int node) const {
    return live_out_[node];
  }

  /// True if `var` is live at the entry of `node`.
  bool IsLiveAt(const std::string& var, int node) const {
    return live_in_[node].count(var) != 0;
  }

  // --- Reaching definitions (§3.2.3) ---
  const std::set<Definition>& ReachingIn(int node) const {
    return rd_in_[node];
  }
  const std::set<Definition>& ReachingOut(int node) const {
    return rd_out_[node];
  }

  // --- UD / DU chains (§3.2.2) ---
  /// Definitions of `var` that reach the use of `var` at `node` (RD(u)).
  std::vector<Definition> UdChain(int node, const std::string& var) const;

  /// Uses reached by the definition `d`.
  std::vector<Use> DuChain(const Definition& d) const;

  /// All uses of any variable inside the given node set.
  std::vector<Use> UsesIn(const std::vector<int>& nodes) const;

 private:
  void AssertCfgAlive() const {
    assert((cfg_alive_ == nullptr || *cfg_alive_) &&
           "DataflowResult used after its Cfg was destroyed");
  }

  const Cfg* cfg_ = nullptr;
  std::shared_ptr<const bool> cfg_alive_;
  std::vector<std::set<std::string>> live_in_;
  std::vector<std::set<std::string>> live_out_;
  std::vector<std::set<Definition>> rd_in_;
  std::vector<std::set<Definition>> rd_out_;
  std::map<Use, std::vector<Definition>> ud_;
  std::map<Definition, std::vector<Use>> du_;
};

}  // namespace aggify
