// Interprocedural purity / side-effect analysis over the catalog's UDFs.
//
// Effects form a small lattice ordered by "how much state the callee can
// disturb":
//
//   kPure < kReadsDatabase < kWritesTempState < kWritesPersistentState
//                                                          < kUnknown
//
// Each function's local effect is read off its body (DML statements, query
// evaluation, temp-table declarations); calls contribute their callee's
// effect. The interprocedural level is the least fixpoint of
//
//   level(f) = max(local(f), max over g in callees(f) of level(g))
//
// computed by iteration (the lattice is finite and the transfer function
// monotone, so recursion — including mutual recursion — converges).
// Functions invoked but absent from the catalog (and not built-in scalars)
// are kUnknown: the analysis is sound, never optimistic.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "parser/statement.h"
#include "storage/catalog.h"

namespace aggify {

enum class EffectLevel : uint8_t {
  kPure = 0,                  ///< touches nothing beyond its own locals
  kReadsDatabase = 1,         ///< evaluates queries (persistent or temp)
  kWritesTempState = 2,       ///< mutates temp tables / table variables
  kWritesPersistentState = 3, ///< DML against persistent tables
  kUnknown = 4,               ///< calls something the analysis cannot see
};

const char* EffectLevelName(EffectLevel level);

struct FunctionEffects {
  EffectLevel level = EffectLevel::kPure;
  /// What pinned the level there: "INSERT INTO audit_log",
  /// "calls log_it", "calls unknown function f", ...
  std::string evidence;
};

/// Collects the names of every scalar function invoked anywhere in `stmt`,
/// descending into nested statements, query expressions, and subqueries
/// (which Expr::Walk deliberately does not enter).
void CollectCalledFunctions(const Stmt& stmt, std::set<std::string>* out);
void CollectCalledFunctions(const Expr& expr, std::set<std::string>* out);
void CollectCalledFunctions(const SelectStmt& query,
                            std::set<std::string>* out);

class CallGraph {
 public:
  /// Decides whether a call target is a pure built-in scalar (ABS, UPPER,
  /// ...). Supplied by the caller because the built-in registry lives in a
  /// higher layer; nullptr treats every non-catalog name as kUnknown.
  using BuiltinPredicate = std::function<bool(const std::string&)>;

  /// Builds the graph over every function registered in `catalog` and runs
  /// the effect fixpoint.
  static CallGraph Build(const Catalog& catalog,
                         BuiltinPredicate is_builtin = nullptr);

  /// Interprocedural effects of the named function. Built-ins are kPure;
  /// names the graph has never seen are kUnknown.
  FunctionEffects EffectsOf(const std::string& name) const;

  /// Direct callees of a catalog function (sorted, deduplicated).
  std::vector<std::string> Callees(const std::string& name) const;

  /// Effects of an arbitrary statement tree (e.g. a cursor-loop body)
  /// evaluated against this graph: its local effect joined with the effects
  /// of everything it calls.
  FunctionEffects StatementEffects(const Stmt& stmt) const;

  std::vector<std::string> FunctionNames() const;

 private:
  struct Node {
    std::set<std::string> callees;
    FunctionEffects local;     ///< before propagation
    FunctionEffects combined;  ///< after the fixpoint
  };
  bool IsBuiltin(const std::string& name) const {
    return is_builtin_ && is_builtin_(name);
  }

  std::map<std::string, Node> nodes_;
  BuiltinPredicate is_builtin_;
};

}  // namespace aggify
