// Algebraic classification of cursor-loop bodies: order-sensitivity and
// decomposability.
//
// A loop body is a fold over the cursor's rows. If every accumulator update
// is a commutative fold —
//
//   kSum          acc = acc + e   (also acc - e; e row-pure)
//   kProduct      acc = acc * e
//   kGuardedMin   IF (e < acc) SET acc = e   (and the IS NULL OR variant)
//   kGuardedMax   IF (e > acc) SET acc = e
//
// — where e is *row-pure* (built only from the current row's fetch
// variables, loop-invariant variables, literals, and pure calls), then the
// final state is independent of row order and Eq. 6's forced
// Sort + StreamAggregate can be elided. "Last value wins" (acc = e), BREAK,
// guards that read accumulators outside the extremum pattern, and anything
// the grammar below does not recognize are conservatively order-sensitive.
//
// Decomposability is stricter: a fold is mergeable when two partial states
// that both started from the same loop-entry baseline c can be combined —
//
//   kSum          merged = a + b - c       (c is loop-invariant: V_init
//                                           arguments repeat per row)
//   kGuardedMin   merged = a if a <= b else b   (idempotent; c cancels)
//   kGuardedMax   symmetric
//
// kProduct is order-insensitive but NOT decomposable *here*: the inverse
// (a * b / c) divides by a possibly-zero baseline, so this algebra derives
// no Merge. The homomorphism-calculus synthesis pass on top of this
// classifier (analysis/merge_synthesis.h) recovers it — and a much wider
// class — by augmenting the state with a factor image and zero count
// instead of using the unsafe division inverse.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "parser/statement.h"

namespace aggify {

struct MergePlan;  // analysis/merge_synthesis.h

enum class FoldKind : uint8_t {
  kSum,         ///< order-insensitive, mergeable
  kProduct,     ///< order-insensitive, not mergeable (no safe inverse)
  kGuardedMin,  ///< order-insensitive, mergeable
  kGuardedMax,  ///< order-insensitive, mergeable
  kLastValue,   ///< acc = e — order-sensitive
  kOpaque,      ///< unrecognized update shape — conservatively sensitive
};

const char* FoldKindName(FoldKind kind);

struct FieldFold {
  std::string field;
  FoldKind kind;
};

struct BodyClassification {
  /// Final state provably independent of row order: Eq. 6 sort elidable.
  bool order_insensitive = false;
  /// Every fold mergeable: a correct Merge is synthesizable.
  bool decomposable = false;
  /// Per-accumulator classification (sorted by field name).
  std::vector<FieldFold> folds;
  /// ALL order-insensitivity blockers, in body order (so `aggify_cli --lint`
  /// reports every reason a loop stays serial in one pass). When the body is
  /// order-insensitive this instead holds the single positive proof summary.
  std::vector<std::string> reasons;
  /// ALL Merge blockers when order-insensitive but not decomposable.
  std::vector<std::string> merge_reasons;
  /// The homomorphism-calculus merge plan (analysis/merge_synthesis.h) when
  /// the synthesis pass derived one; null when the pass was not run or every
  /// field defeated the calculus. Attached by the rewriter, not the
  /// classifier.
  std::shared_ptr<const MergePlan> merge_plan;

  /// "; "-joined blocker (or proof) text — the pre-list-refactor `reason`.
  std::string reason() const { return Join(reasons); }
  std::string merge_reason() const { return Join(merge_reasons); }

  const FoldKind* FoldFor(const std::string& field) const {
    for (const auto& f : folds) {
      if (f.field == field) return &f.kind;
    }
    return nullptr;
  }

 private:
  static std::string Join(const std::vector<std::string>& parts) {
    std::string out;
    for (const auto& p : parts) {
      if (!out.empty()) out += "; ";
      out += p;
    }
    return out;
  }
};

/// Classifies a FETCH-stripped loop body.
/// \param fields the aggregate's state variables (Eq. 1 V_F)
/// \param row_vars per-row inputs (the fetch variables)
/// \param is_pure_call names of calls the caller has proven pure and
///   deterministic for the duration of one query (built-in scalars, proven
///   read-only UDFs); nullptr treats every call as impure.
BodyClassification ClassifyLoopBody(
    const BlockStmt& body, const std::set<std::string>& fields,
    const std::set<std::string>& row_vars,
    const std::function<bool(const std::string&)>& is_pure_call = nullptr);

}  // namespace aggify
