#include "analysis/absint.h"

#include <algorithm>
#include <deque>

#include "exec/eval.h"

namespace aggify {

namespace {

bool IsIntConst(const AbsValue& v) {
  return v.IsConst() && v.constant.is_int();
}

/// Normalizes a const/interval into interval bounds. Only call for int-like
/// values (IsIntConst or IsInterval).
void Bounds(const AbsValue& v, bool* has_lo, int64_t* lo, bool* has_hi,
            int64_t* hi) {
  if (v.IsInterval()) {
    *has_lo = v.has_lo;
    *lo = v.lo;
    *has_hi = v.has_hi;
    *hi = v.hi;
  } else {
    *has_lo = *has_hi = true;
    *lo = *hi = v.constant.int_value();
  }
}

bool IntLike(const AbsValue& v) { return v.IsInterval() || IsIntConst(v); }

}  // namespace

AbsValue AbsValue::Interval(bool has_lo, int64_t lo, bool has_hi,
                            int64_t hi) {
  // Degenerate [c, c] canonicalizes to the constant so fixpoint equality
  // and const queries see one representation.
  if (has_lo && has_hi && lo == hi) return Const(Value::Int(lo));
  AbsValue v;
  v.kind = Kind::kInterval;
  v.has_lo = has_lo;
  v.lo = has_lo ? lo : 0;
  v.has_hi = has_hi;
  v.hi = has_hi ? hi : 0;
  return v;
}

bool AbsValue::operator==(const AbsValue& o) const {
  if (kind != o.kind) return false;
  switch (kind) {
    case Kind::kBottom:
    case Kind::kTop:
      return true;
    case Kind::kConst:
      return constant.StructurallyEquals(o.constant);
    case Kind::kInterval:
      return has_lo == o.has_lo && has_hi == o.has_hi &&
             (!has_lo || lo == o.lo) && (!has_hi || hi == o.hi);
  }
  return false;
}

std::string AbsValue::ToString() const {
  switch (kind) {
    case Kind::kBottom:
      return "_|_";
    case Kind::kTop:
      return "T";
    case Kind::kConst:
      return "const(" + constant.ToString() + ")";
    case Kind::kInterval: {
      std::string l = has_lo ? std::to_string(lo) : "-inf";
      std::string h = has_hi ? std::to_string(hi) : "+inf";
      return "[" + l + ", " + h + "]";
    }
  }
  return "?";
}

AbsValue Join(const AbsValue& a, const AbsValue& b) {
  if (a.IsBottom()) return b;
  if (b.IsBottom()) return a;
  if (a.IsTop() || b.IsTop()) return AbsValue::Top();
  if (a == b) return a;
  // Distinct elements: only non-NULL integers join into an interval;
  // everything else (mixed types, NULLs, strings) goes to top.
  if (IntLike(a) && IntLike(b)) {
    bool alo, ahi, blo, bhi;
    int64_t al, ah, bl, bh;
    Bounds(a, &alo, &al, &ahi, &ah);
    Bounds(b, &blo, &bl, &bhi, &bh);
    bool has_lo = alo && blo;
    bool has_hi = ahi && bhi;
    return AbsValue::Interval(has_lo, std::min(al, bl), has_hi,
                              std::max(ah, bh));
  }
  return AbsValue::Top();
}

AbsValue Widen(const AbsValue& prev, const AbsValue& next) {
  AbsValue joined = Join(prev, next);
  if (prev.IsBottom() || !joined.IsInterval()) return joined;
  if (!IntLike(prev)) return AbsValue::Top();
  bool plo, phi;
  int64_t pl, ph;
  Bounds(prev, &plo, &pl, &phi, &ph);
  // A bound that moved since `prev` jumps to infinity: ascending chains
  // through a loop head stabilize after at most two widenings.
  bool has_lo = joined.has_lo && plo && joined.lo >= pl;
  bool has_hi = joined.has_hi && phi && joined.hi <= ph;
  return AbsValue::Interval(has_lo, joined.lo, has_hi, joined.hi);
}

bool AbsLeq(const AbsValue& a, const AbsValue& b) {
  if (a.IsBottom() || b.IsTop()) return true;
  if (b.IsBottom() || a.IsTop()) return false;
  if (a == b) return true;
  if (b.IsInterval() && IntLike(a)) {
    bool alo, ahi;
    int64_t al, ah;
    Bounds(a, &alo, &al, &ahi, &ah);
    bool lo_ok = !b.has_lo || (alo && al >= b.lo);
    bool hi_ok = !b.has_hi || (ahi && ah <= b.hi);
    return lo_ok && hi_ok;
  }
  return false;
}

AbsEnv JoinEnv(const AbsEnv& a, const AbsEnv& b) {
  // A variable absent from a map is top, so only shared keys can stay below
  // top; entries that join to top are dropped to keep maps canonical.
  AbsEnv out;
  for (const auto& [name, av] : a) {
    auto it = b.find(name);
    if (it == b.end()) continue;
    AbsValue j = Join(av, it->second);
    if (!j.IsTop()) out.emplace(name, std::move(j));
  }
  return out;
}

AbsEnv WidenEnv(const AbsEnv& prev, const AbsEnv& next) {
  AbsEnv out;
  for (const auto& [name, pv] : prev) {
    auto it = next.find(name);
    if (it == next.end()) continue;
    AbsValue w = Widen(pv, it->second);
    if (!w.IsTop()) out.emplace(name, std::move(w));
  }
  return out;
}

namespace {

AbsValue ConstOrTop(const Result<Value>& r) {
  // An operator error (division by zero, bad cast, type mismatch) means the
  // concrete execution would fail; folding must not erase that, so the
  // abstraction gives up instead of claiming a value.
  if (!r.ok()) return AbsValue::Top();
  return AbsValue::Const(r.ValueOrDie());
}

/// Interval transfer for +, -, * with two's-complement wrap in the concrete
/// kernel: any bound computation that overflows abandons the interval
/// (wrapping is not monotone, so a widened bound would be unsound).
AbsValue IntervalArith(BinaryOp op, const AbsValue& a, const AbsValue& b) {
  bool alo, ahi, blo, bhi;
  int64_t al, ah, bl, bh;
  Bounds(a, &alo, &al, &ahi, &ah);
  Bounds(b, &blo, &bl, &bhi, &bh);
  auto add = [](int64_t x, int64_t y, int64_t* r) {
    return !__builtin_add_overflow(x, y, r);
  };
  auto sub = [](int64_t x, int64_t y, int64_t* r) {
    return !__builtin_sub_overflow(x, y, r);
  };
  switch (op) {
    case BinaryOp::kAdd: {
      int64_t lo = 0, hi = 0;
      bool has_lo = alo && blo && add(al, bl, &lo);
      bool has_hi = ahi && bhi && add(ah, bh, &hi);
      if (!has_lo && !has_hi) return AbsValue::Top();
      return AbsValue::Interval(has_lo, lo, has_hi, hi);
    }
    case BinaryOp::kSub: {
      int64_t lo = 0, hi = 0;
      bool has_lo = alo && bhi && sub(al, bh, &lo);
      bool has_hi = ahi && blo && sub(ah, bl, &hi);
      if (!has_lo && !has_hi) return AbsValue::Top();
      return AbsValue::Interval(has_lo, lo, has_hi, hi);
    }
    case BinaryOp::kMul: {
      // Products need all four corner terms: only fully bounded operands.
      if (!(alo && ahi && blo && bhi)) return AbsValue::Top();
      int64_t c[4];
      if (__builtin_mul_overflow(al, bl, &c[0]) ||
          __builtin_mul_overflow(al, bh, &c[1]) ||
          __builtin_mul_overflow(ah, bl, &c[2]) ||
          __builtin_mul_overflow(ah, bh, &c[3])) {
        return AbsValue::Top();
      }
      return AbsValue::Interval(true, *std::min_element(c, c + 4), true,
                                *std::max_element(c, c + 4));
    }
    default:
      return AbsValue::Top();
  }
}

/// Decides a comparison over two int-like values from disjoint / nested
/// bounds, when the bounds allow. Comparing two non-NULL INTs can never
/// error concretely, so a decided answer may fold.
AbsValue IntervalCompare(BinaryOp op, const AbsValue& a, const AbsValue& b) {
  bool alo, ahi, blo, bhi;
  int64_t al, ah, bl, bh;
  Bounds(a, &alo, &al, &ahi, &ah);
  Bounds(b, &blo, &bl, &bhi, &bh);
  // a_hi < b_lo  =>  every a < every b;  a_lo > b_hi  =>  every a > every b.
  bool lt = ahi && blo && ah < bl;
  bool gt = alo && bhi && al > bh;
  bool le = ahi && blo && ah <= bl;
  bool ge = alo && bhi && al >= bh;
  auto decided = [](bool v) { return AbsValue::Const(Value::Bool(v)); };
  switch (op) {
    case BinaryOp::kLt:
      if (lt) return decided(true);
      if (ge) return decided(false);
      break;
    case BinaryOp::kLe:
      if (le) return decided(true);
      if (gt) return decided(false);
      break;
    case BinaryOp::kGt:
      if (gt) return decided(true);
      if (le) return decided(false);
      break;
    case BinaryOp::kGe:
      if (ge) return decided(true);
      if (lt) return decided(false);
      break;
    case BinaryOp::kEq:
      if (lt || gt) return decided(false);
      break;
    case BinaryOp::kNe:
      if (lt || gt) return decided(true);
      break;
    default:
      break;
  }
  return AbsValue::Top();
}

AbsValue EvalBinaryAbstract(const BinaryExpr& bin, const AbsEnv& env) {
  AbsValue l = EvalAbstract(*bin.left, env);
  AbsValue r = EvalAbstract(*bin.right, env);
  if (l.IsBottom() || r.IsBottom()) return AbsValue::Bottom();

  // The interpreter short-circuits the Kleene connectives on a decided
  // boolean left operand, so the right side (and any error it hides) is
  // provably not evaluated.
  if (bin.op == BinaryOp::kAnd && l.IsConst() && l.constant.is_bool() &&
      !l.constant.bool_value()) {
    return AbsValue::Const(Value::Bool(false));
  }
  if (bin.op == BinaryOp::kOr && l.IsConst() && l.constant.is_bool() &&
      l.constant.bool_value()) {
    return AbsValue::Const(Value::Bool(true));
  }

  if (l.IsConst() && r.IsConst()) {
    const Value& a = l.constant;
    const Value& b = r.constant;
    switch (bin.op) {
      case BinaryOp::kAdd: return ConstOrTop(Add(a, b));
      case BinaryOp::kSub: return ConstOrTop(Subtract(a, b));
      case BinaryOp::kMul: return ConstOrTop(Multiply(a, b));
      case BinaryOp::kDiv: return ConstOrTop(Divide(a, b));
      case BinaryOp::kMod: return ConstOrTop(Modulo(a, b));
      case BinaryOp::kEq: return ConstOrTop(Eq(a, b));
      case BinaryOp::kNe: return ConstOrTop(Ne(a, b));
      case BinaryOp::kLt: return ConstOrTop(Lt(a, b));
      case BinaryOp::kLe: return ConstOrTop(Le(a, b));
      case BinaryOp::kGt: return ConstOrTop(Gt(a, b));
      case BinaryOp::kGe: return ConstOrTop(Ge(a, b));
      case BinaryOp::kAnd: return ConstOrTop(And(a, b));
      case BinaryOp::kOr: return ConstOrTop(Or(a, b));
      case BinaryOp::kConcat: return ConstOrTop(Concat(a, b));
    }
    return AbsValue::Top();
  }

  if (IntLike(l) && IntLike(r)) {
    switch (bin.op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
        return IntervalArith(bin.op, l, r);
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        return IntervalCompare(bin.op, l, r);
      default:
        return AbsValue::Top();
    }
  }
  return AbsValue::Top();
}

}  // namespace

AbsValue EvalAbstract(const Expr& expr, const AbsEnv& env) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return AbsValue::Const(static_cast<const LiteralExpr&>(expr).value);

    case ExprKind::kVarRef: {
      auto it = env.find(static_cast<const VarRefExpr&>(expr).name);
      return it == env.end() ? AbsValue::Top() : it->second;
    }

    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      AbsValue v = EvalAbstract(*u.operand, env);
      if (v.IsBottom()) return v;
      if (u.op == UnaryOp::kNeg) {
        if (v.IsConst()) return ConstOrTop(Negate(v.constant));
        if (v.IsInterval()) {
          int64_t nlo = 0, nhi = 0;
          bool has_lo =
              v.has_hi && !__builtin_sub_overflow(int64_t{0}, v.hi, &nlo);
          bool has_hi =
              v.has_lo && !__builtin_sub_overflow(int64_t{0}, v.lo, &nhi);
          if (!has_lo && !has_hi) return AbsValue::Top();
          return AbsValue::Interval(has_lo, nlo, has_hi, nhi);
        }
        return AbsValue::Top();
      }
      if (v.IsConst()) return ConstOrTop(Not(v.constant));
      return AbsValue::Top();
    }

    case ExprKind::kBinary:
      return EvalBinaryAbstract(static_cast<const BinaryExpr&>(expr), env);

    case ExprKind::kIsNull: {
      const auto& isn = static_cast<const IsNullExpr&>(expr);
      AbsValue v = EvalAbstract(*isn.operand, env);
      if (v.IsBottom()) return v;
      if (v.IsConst()) {
        bool is_null = v.constant.is_null();
        return AbsValue::Const(Value::Bool(isn.negated ? !is_null : is_null));
      }
      // Intervals describe non-NULL INTs by construction.
      if (v.IsInterval()) {
        return AbsValue::Const(Value::Bool(isn.negated));
      }
      return AbsValue::Top();
    }

    case ExprKind::kCast: {
      const auto& cast = static_cast<const CastExpr&>(expr);
      AbsValue v = EvalAbstract(*cast.operand, env);
      if (v.IsBottom()) return v;
      if (v.IsConst()) return ConstOrTop(v.constant.CastTo(cast.target.id));
      return AbsValue::Top();
    }

    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      // The builtin registry is deterministic and effect-free, so a call on
      // proven-constant arguments folds through the real implementation.
      if (!IsScalarBuiltinName(call.name)) return AbsValue::Top();
      std::vector<Value> args;
      args.reserve(call.args.size());
      for (const auto& a : call.args) {
        AbsValue v = EvalAbstract(*a, env);
        if (v.IsBottom()) return v;
        if (!v.IsConst()) return AbsValue::Top();
        args.push_back(v.constant);
      }
      return ConstOrTop(ApplyScalarBuiltin(call.name, args));
    }

    case ExprKind::kCaseWhen: {
      const auto& cw = static_cast<const CaseWhenExpr&>(expr);
      // Arms are joined only while every guard decides; an undecided guard
      // means the runtime may evaluate expressions this analysis has no
      // error model for, so the result degrades to top.
      for (const auto& arm : cw.arms) {
        switch (AbstractTruth(*arm.condition, env)) {
          case AbsTruth::kTrue:
            return EvalAbstract(*arm.result, env);
          case AbsTruth::kFalse:
            continue;
          case AbsTruth::kUnknown:
            return AbsValue::Top();
        }
      }
      if (cw.else_result != nullptr) {
        return EvalAbstract(*cw.else_result, env);
      }
      return AbsValue::Const(Value::Null());
    }

    case ExprKind::kColumnRef:
    case ExprKind::kAggregateCall:
    case ExprKind::kScalarSubquery:
    case ExprKind::kExists:
    case ExprKind::kInList:
      return AbsValue::Top();
  }
  return AbsValue::Top();
}

AbsTruth AbstractTruth(const Expr& condition, const AbsEnv& env) {
  AbsValue v = EvalAbstract(condition, env);
  if (v.IsConst()) {
    const Value& c = v.constant;
    if (c.is_null()) return AbsTruth::kFalse;  // EvalPredicate: NULL=false
    if (c.is_bool()) return c.bool_value() ? AbsTruth::kTrue : AbsTruth::kFalse;
    if (c.is_numeric()) {
      return c.AsDouble() != 0.0 ? AbsTruth::kTrue : AbsTruth::kFalse;
    }
    return AbsTruth::kUnknown;  // strings are a runtime TypeError
  }
  if (v.IsInterval()) {
    // Non-NULL INT: truthy iff nonzero.
    if ((v.has_lo && v.lo > 0) || (v.has_hi && v.hi < 0)) {
      return AbsTruth::kTrue;
    }
  }
  return AbsTruth::kUnknown;
}

namespace {

/// Applies node `n`'s effect to `env` in place.
void Transfer(const CfgNode& n, AbsEnv* env) {
  if (n.kind != CfgNodeKind::kStatement) return;  // conditions don't write
  if (n.stmt != nullptr) {
    switch (n.stmt->kind) {
      case StmtKind::kDeclareVar: {
        const auto& d = static_cast<const DeclareVarStmt&>(*n.stmt);
        AbsValue v = d.initializer != nullptr
                         ? EvalAbstract(*d.initializer, *env)
                         : AbsValue::Const(Value::Null());
        if (v.IsTop()) {
          env->erase(d.name);
        } else {
          (*env)[d.name] = std::move(v);
        }
        return;
      }
      case StmtKind::kSet: {
        const auto& s = static_cast<const SetStmt&>(*n.stmt);
        AbsValue v = EvalAbstract(*s.value, *env);
        if (v.IsTop()) {
          env->erase(s.name);
        } else {
          (*env)[s.name] = std::move(v);
        }
        return;
      }
      case StmtKind::kFor: {
        // The synthetic init node (it carries the ForStmt); the increment
        // node has a null stmt and falls through to the generic kill.
        const auto& f = static_cast<const ForStmt&>(*n.stmt);
        AbsValue v = EvalAbstract(*f.init, *env);
        if (v.IsTop()) {
          env->erase(f.var);
        } else {
          (*env)[f.var] = std::move(v);
        }
        return;
      }
      default:
        break;
    }
  }
  // FETCH, MultiAssign, DML, the FOR increment: whatever the node defines
  // becomes unknown.
  for (const auto& d : n.defs) env->erase(d);
}

}  // namespace

AbstractInterpretation AbstractInterpretation::Run(const Cfg& cfg) {
  AbstractInterpretation r;
  size_t n = static_cast<size_t>(cfg.size());
  r.in_.resize(n);
  r.out_.resize(n);
  r.reachable_.assign(n, false);

  // Loop heads: condition nodes with a back edge (a predecessor numbered
  // after them — node ids are program-ordered except loop-closing edges).
  std::vector<bool> loop_head(n, false);
  for (const auto& node : cfg.nodes()) {
    if (node.kind != CfgNodeKind::kCondition) continue;
    for (int p : node.predecessors) {
      if (p > node.id) loop_head[static_cast<size_t>(node.id)] = true;
    }
  }

  std::deque<int> worklist;
  std::vector<bool> queued(n, false);
  r.reachable_[static_cast<size_t>(cfg.entry())] = true;
  worklist.push_back(cfg.entry());
  queued[static_cast<size_t>(cfg.entry())] = true;

  // The widened lattice has finite height, so this terminates; the hard cap
  // is a defensive backstop that the property tests assert is never hit.
  const int kMaxIterations = 64 * cfg.size() + 1024;
  while (!worklist.empty() && r.iterations_ < kMaxIterations) {
    int id = worklist.front();
    worklist.pop_front();
    queued[static_cast<size_t>(id)] = false;
    ++r.iterations_;

    AbsEnv out = r.in_[static_cast<size_t>(id)];
    Transfer(cfg.node(id), &out);
    r.out_[static_cast<size_t>(id)] = out;

    for (int s : cfg.node(id).successors) {
      size_t si = static_cast<size_t>(s);
      AbsEnv cand;
      if (!r.reachable_[si]) {
        cand = out;
      } else {
        AbsEnv joined = JoinEnv(r.in_[si], out);
        cand = loop_head[si] ? WidenEnv(r.in_[si], joined)
                             : std::move(joined);
      }
      if (!r.reachable_[si] || cand != r.in_[si]) {
        r.reachable_[si] = true;
        r.in_[si] = std::move(cand);
        if (!queued[si]) {
          worklist.push_back(s);
          queued[si] = true;
        }
      }
    }
  }
  return r;
}

}  // namespace aggify
