#include "analysis/cfg.h"

#include <algorithm>
#include <sstream>

namespace aggify {

namespace {

void CollectExprVars(const Expr* e, std::vector<std::string>* out) {
  if (e != nullptr) CollectVariableRefs(*e, out);
}

void CollectSelectVars(const SelectStmt* q, std::vector<std::string>* out) {
  if (q == nullptr) return;
  // Reuse the expression walker by wrapping: CollectVariableRefs descends
  // into subqueries, so a scalar-subquery shim covers the whole SELECT.
  // Cheaper: walk the clauses directly.
  for (const auto& cte : q->ctes) CollectSelectVars(cte.query.get(), out);
  if (q->top_n) CollectExprVars(q->top_n.get(), out);
  for (const auto& item : q->items) CollectExprVars(item.expr.get(), out);
  for (const auto& t : q->from) {
    if (t->kind == TableRef::Kind::kSubquery) {
      CollectSelectVars(t->subquery.get(), out);
    } else if (t->kind == TableRef::Kind::kJoin) {
      // Join trees: walk via ToString-free recursion.
      std::vector<const TableRef*> stack{t.get()};
      while (!stack.empty()) {
        const TableRef* cur = stack.back();
        stack.pop_back();
        if (cur->kind == TableRef::Kind::kSubquery) {
          CollectSelectVars(cur->subquery.get(), out);
        } else if (cur->kind == TableRef::Kind::kJoin) {
          stack.push_back(cur->left.get());
          stack.push_back(cur->right.get());
          CollectExprVars(cur->join_condition.get(), out);
        }
      }
    }
  }
  CollectExprVars(q->where.get(), out);
  for (const auto& g : q->group_by) CollectExprVars(g.get(), out);
  CollectExprVars(q->having.get(), out);
  for (const auto& o : q->order_by) CollectExprVars(o.expr.get(), out);
  CollectSelectVars(q->union_all.get(), out);
}

}  // namespace

void StatementDefs(const Stmt& stmt, std::vector<std::string>* defs) {
  switch (stmt.kind) {
    case StmtKind::kDeclareVar:
      defs->push_back(static_cast<const DeclareVarStmt&>(stmt).name);
      break;
    case StmtKind::kSet:
      defs->push_back(static_cast<const SetStmt&>(stmt).name);
      break;
    case StmtKind::kFetch: {
      const auto& f = static_cast<const FetchStmt&>(stmt);
      for (const auto& v : f.into) defs->push_back(v);
      defs->push_back("@@fetch_status");
      break;
    }
    case StmtKind::kDeclareTempTable:
      defs->push_back(static_cast<const DeclareTempTableStmt&>(stmt).name);
      break;
    case StmtKind::kMultiAssign: {
      const auto& ma = static_cast<const MultiAssignStmt&>(stmt);
      for (const auto& t : ma.targets) defs->push_back(t);
      break;
    }
    case StmtKind::kGuardedRewrite: {
      // Semantically the statement IS its MultiAssign; the fallback computes
      // the same values, so its writes are not additional defs. The DML form
      // writes a table, not variables.
      const auto& g = static_cast<const GuardedRewriteStmt&>(stmt);
      if (g.rewritten != nullptr) {
        for (const auto& t : g.rewritten->targets) defs->push_back(t);
      }
      break;
    }
    default:
      break;
  }
}

void StatementUses(const Stmt& stmt, std::vector<std::string>* uses) {
  switch (stmt.kind) {
    case StmtKind::kDeclareVar:
      CollectExprVars(static_cast<const DeclareVarStmt&>(stmt).initializer.get(),
                      uses);
      break;
    case StmtKind::kSet:
      CollectExprVars(static_cast<const SetStmt&>(stmt).value.get(), uses);
      break;
    case StmtKind::kDeclareCursor:
      CollectSelectVars(static_cast<const DeclareCursorStmt&>(stmt).query.get(),
                        uses);
      break;
    case StmtKind::kIf:
      CollectExprVars(static_cast<const IfStmt&>(stmt).condition.get(), uses);
      break;
    case StmtKind::kWhile:
      CollectExprVars(static_cast<const WhileStmt&>(stmt).condition.get(), uses);
      break;
    case StmtKind::kReturn:
      CollectExprVars(static_cast<const ReturnStmt&>(stmt).value.get(), uses);
      break;
    case StmtKind::kInsert: {
      const auto& ins = static_cast<const InsertStmt&>(stmt);
      for (const auto& row : ins.values_rows) {
        for (const auto& e : row) CollectExprVars(e.get(), uses);
      }
      CollectSelectVars(ins.select.get(), uses);
      if (!ins.table.empty() && ins.table[0] == '@') uses->push_back(ins.table);
      break;
    }
    case StmtKind::kUpdate: {
      const auto& upd = static_cast<const UpdateStmt&>(stmt);
      for (const auto& [col, e] : upd.assignments) CollectExprVars(e.get(), uses);
      CollectExprVars(upd.where.get(), uses);
      if (!upd.table.empty() && upd.table[0] == '@') uses->push_back(upd.table);
      break;
    }
    case StmtKind::kDelete: {
      const auto& del = static_cast<const DeleteStmt&>(stmt);
      CollectExprVars(del.where.get(), uses);
      if (!del.table.empty() && del.table[0] == '@') uses->push_back(del.table);
      break;
    }
    case StmtKind::kExecQuery:
      CollectSelectVars(static_cast<const ExecQueryStmt&>(stmt).query.get(),
                        uses);
      break;
    case StmtKind::kMultiAssign:
      CollectSelectVars(static_cast<const MultiAssignStmt&>(stmt).query.get(),
                        uses);
      break;
    case StmtKind::kGuardedRewrite: {
      const auto& g = static_cast<const GuardedRewriteStmt&>(stmt);
      if (g.rewritten_dml != nullptr) {
        StatementUses(*g.rewritten_dml, uses);
      } else {
        CollectSelectVars(g.rewritten->query.get(), uses);
      }
      break;
    }
    default:
      break;
  }
}

// Not in an anonymous namespace: Cfg befriends this class by name.
class CfgBuilder {
 public:
  explicit CfgBuilder(Cfg* cfg) : cfg_(cfg) {}

  Status Run(const BlockStmt& body, const std::vector<std::string>& params) {
    int entry = NewNode(CfgNodeKind::kEntry, nullptr, nullptr);
    for (const auto& p : params) cfg_->nodes_[entry].defs.push_back(p);
    cfg_->entry_ = entry;
    std::vector<int> preds{entry};
    RETURN_NOT_OK(BuildBlock(body, &preds));
    int exit = NewNode(CfgNodeKind::kExit, nullptr, nullptr);
    cfg_->exit_ = exit;
    for (int p : preds) Edge(p, exit);
    for (int r : pending_returns_) Edge(r, exit);
    return Status::OK();
  }

 private:
  struct LoopCtx {
    int continue_target;
    std::vector<int>* breaks;
  };

  int NewNode(CfgNodeKind kind, const Stmt* stmt, const Expr* cond) {
    CfgNode n;
    n.id = static_cast<int>(cfg_->nodes_.size());
    n.kind = kind;
    n.stmt = stmt;
    n.condition = cond;
    if (stmt != nullptr) {
      if (kind == CfgNodeKind::kCondition) {
        CollectExprVars(cond, &n.uses);
      } else {
        StatementDefs(*stmt, &n.defs);
        StatementUses(*stmt, &n.uses);
      }
      cfg_->stmt_to_node_.emplace(stmt, n.id);
    }
    cfg_->nodes_.push_back(std::move(n));
    return cfg_->nodes_.back().id;
  }

  void Edge(int from, int to) {
    cfg_->nodes_[from].successors.push_back(to);
    cfg_->nodes_[to].predecessors.push_back(from);
  }

  void Connect(const std::vector<int>& preds, int to) {
    for (int p : preds) Edge(p, to);
  }

  Status BuildBlock(const BlockStmt& block, std::vector<int>* preds) {
    for (const auto& s : block.statements) {
      RETURN_NOT_OK(BuildStmt(*s, preds));
    }
    return Status::OK();
  }

  Status BuildStmt(const Stmt& stmt, std::vector<int>* preds) {
    switch (stmt.kind) {
      case StmtKind::kBlock:
        return BuildBlock(static_cast<const BlockStmt&>(stmt), preds);

      case StmtKind::kIf: {
        const auto& if_stmt = static_cast<const IfStmt&>(stmt);
        int cond = NewNode(CfgNodeKind::kCondition, &stmt,
                           if_stmt.condition.get());
        Connect(*preds, cond);
        std::vector<int> then_preds{cond};
        RETURN_NOT_OK(BuildStmt(*if_stmt.then_branch, &then_preds));
        std::vector<int> else_preds{cond};
        if (if_stmt.else_branch != nullptr) {
          RETURN_NOT_OK(BuildStmt(*if_stmt.else_branch, &else_preds));
        }
        preds->clear();
        preds->insert(preds->end(), then_preds.begin(), then_preds.end());
        preds->insert(preds->end(), else_preds.begin(), else_preds.end());
        return Status::OK();
      }

      case StmtKind::kWhile: {
        const auto& loop = static_cast<const WhileStmt&>(stmt);
        int cond = NewNode(CfgNodeKind::kCondition, &stmt,
                           loop.condition.get());
        Connect(*preds, cond);
        std::vector<int> breaks;
        loop_stack_.push_back(LoopCtx{cond, &breaks});
        std::vector<int> body_preds{cond};
        size_t body_entry_marker = cfg_->nodes_.size();
        RETURN_NOT_OK(BuildStmt(*loop.body, &body_preds));
        loop_stack_.pop_back();
        Connect(body_preds, cond);  // back edge
        // Record the body-entry node (first node created for the body) so
        // LoopExitNode can identify the false successor.
        int body_entry = body_entry_marker < cfg_->nodes_.size()
                             ? static_cast<int>(body_entry_marker)
                             : cond;
        cfg_->loop_exit_.emplace(&stmt, body_entry);
        preds->clear();
        preds->push_back(cond);
        preds->insert(preds->end(), breaks.begin(), breaks.end());
        return Status::OK();
      }

      case StmtKind::kFor: {
        const auto& loop = static_cast<const ForStmt&>(stmt);
        // Desugared: init; while (cond) { body; incr; }
        int init = NewNode(CfgNodeKind::kStatement, &stmt, nullptr);
        cfg_->nodes_[init].defs.push_back(loop.var);
        CollectExprVars(loop.init.get(), &cfg_->nodes_[init].uses);
        Connect(*preds, init);
        int cond = NewNode(CfgNodeKind::kCondition, nullptr, loop.bound.get());
        cfg_->nodes_[cond].uses.push_back(loop.var);
        CollectExprVars(loop.bound.get(), &cfg_->nodes_[cond].uses);
        Edge(init, cond);
        // Increment node built up-front so CONTINUE can target it.
        std::vector<int> breaks;
        int incr = NewNode(CfgNodeKind::kStatement, nullptr, nullptr);
        cfg_->nodes_[incr].defs.push_back(loop.var);
        cfg_->nodes_[incr].uses.push_back(loop.var);
        CollectExprVars(loop.step.get(), &cfg_->nodes_[incr].uses);
        loop_stack_.push_back(LoopCtx{incr, &breaks});
        std::vector<int> body_preds{cond};
        size_t body_entry_marker = cfg_->nodes_.size();
        RETURN_NOT_OK(BuildStmt(*loop.body, &body_preds));
        loop_stack_.pop_back();
        Connect(body_preds, incr);
        Edge(incr, cond);
        int body_entry = body_entry_marker < cfg_->nodes_.size()
                             ? static_cast<int>(body_entry_marker)
                             : incr;
        cfg_->loop_exit_.emplace(&stmt, body_entry);
        preds->clear();
        preds->push_back(cond);
        preds->insert(preds->end(), breaks.begin(), breaks.end());
        return Status::OK();
      }

      case StmtKind::kBreak: {
        int n = NewNode(CfgNodeKind::kStatement, &stmt, nullptr);
        Connect(*preds, n);
        if (loop_stack_.empty()) {
          return Status::BindError("BREAK outside of a loop");
        }
        loop_stack_.back().breaks->push_back(n);
        preds->clear();
        return Status::OK();
      }

      case StmtKind::kContinue: {
        int n = NewNode(CfgNodeKind::kStatement, &stmt, nullptr);
        Connect(*preds, n);
        if (loop_stack_.empty()) {
          return Status::BindError("CONTINUE outside of a loop");
        }
        Edge(n, loop_stack_.back().continue_target);
        preds->clear();
        return Status::OK();
      }

      case StmtKind::kReturn: {
        int n = NewNode(CfgNodeKind::kStatement, &stmt, nullptr);
        Connect(*preds, n);
        pending_returns_.push_back(n);
        preds->clear();
        return Status::OK();
      }

      case StmtKind::kTryCatch: {
        const auto& tc = static_cast<const TryCatchStmt&>(stmt);
        size_t try_start = cfg_->nodes_.size();
        std::vector<int> try_preds = *preds;
        RETURN_NOT_OK(BuildStmt(*tc.try_block, &try_preds));
        size_t try_end = cfg_->nodes_.size();
        // Conservatively, any statement in the try block may transfer
        // control to the catch block.
        std::vector<int> catch_preds = *preds;  // empty try: entry edges
        for (size_t i = try_start; i < try_end; ++i) {
          catch_preds.push_back(static_cast<int>(i));
        }
        RETURN_NOT_OK(BuildStmt(*tc.catch_block, &catch_preds));
        preds->clear();
        preds->insert(preds->end(), try_preds.begin(), try_preds.end());
        preds->insert(preds->end(), catch_preds.begin(), catch_preds.end());
        return Status::OK();
      }

      default: {
        int n = NewNode(CfgNodeKind::kStatement, &stmt, nullptr);
        Connect(*preds, n);
        preds->clear();
        preds->push_back(n);
        return Status::OK();
      }
    }
  }

  Cfg* cfg_;
  std::vector<LoopCtx> loop_stack_;
  std::vector<int> pending_returns_;
};

namespace {

void CollectSubtreeStmts(const Stmt& root, std::set<const Stmt*>* out) {
  out->insert(&root);
  switch (root.kind) {
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(root).statements) {
        CollectSubtreeStmts(*s, out);
      }
      break;
    case StmtKind::kIf: {
      const auto& if_stmt = static_cast<const IfStmt&>(root);
      CollectSubtreeStmts(*if_stmt.then_branch, out);
      if (if_stmt.else_branch != nullptr) {
        CollectSubtreeStmts(*if_stmt.else_branch, out);
      }
      break;
    }
    case StmtKind::kWhile:
      CollectSubtreeStmts(*static_cast<const WhileStmt&>(root).body, out);
      break;
    case StmtKind::kFor:
      CollectSubtreeStmts(*static_cast<const ForStmt&>(root).body, out);
      break;
    case StmtKind::kTryCatch: {
      const auto& tc = static_cast<const TryCatchStmt&>(root);
      CollectSubtreeStmts(*tc.try_block, out);
      CollectSubtreeStmts(*tc.catch_block, out);
      break;
    }
    default:
      break;
  }
}

}  // namespace

std::vector<int> Cfg::NodesInSubtree(const Stmt& root) const {
  std::set<const Stmt*> stmts;
  CollectSubtreeStmts(root, &stmts);
  std::vector<int> out;
  for (const CfgNode& n : nodes_) {
    if (n.stmt != nullptr && stmts.count(n.stmt) != 0) out.push_back(n.id);
  }
  // FOR-loop synthetic init/cond/incr nodes carry stmt == &for or nullptr;
  // include the nullptr ones that lie in the node-id range of the subtree.
  // (They are created strictly between the FOR's own nodes, so the id range
  // of matched nodes covers them.)
  if (!out.empty()) {
    int lo = *std::min_element(out.begin(), out.end());
    int hi = *std::max_element(out.begin(), out.end());
    for (const CfgNode& n : nodes_) {
      if (n.stmt == nullptr && n.kind != CfgNodeKind::kEntry &&
          n.kind != CfgNodeKind::kExit && n.id > lo && n.id < hi) {
        out.push_back(n.id);
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

Result<int> Cfg::NodeFor(const Stmt& stmt) const {
  auto it = stmt_to_node_.find(&stmt);
  if (it == stmt_to_node_.end()) {
    return Status::Internal("statement has no CFG node");
  }
  return it->second;
}

Result<int> Cfg::LoopExitNode(const WhileStmt& loop) const {
  auto cond_it = stmt_to_node_.find(&loop);
  auto body_it = loop_exit_.find(&loop);
  if (cond_it == stmt_to_node_.end() || body_it == loop_exit_.end()) {
    return Status::Internal("loop has no CFG node");
  }
  int body_entry = body_it->second;
  const CfgNode& cond = nodes_[cond_it->second];
  for (int succ : cond.successors) {
    if (succ != body_entry) return succ;
  }
  return Status::Internal("loop has no exit successor");
}

std::string Cfg::ToDot() const {
  std::ostringstream os;
  os << "digraph cfg {\n";
  for (const CfgNode& n : nodes_) {
    std::string label;
    switch (n.kind) {
      case CfgNodeKind::kEntry: label = "ENTRY"; break;
      case CfgNodeKind::kExit: label = "EXIT"; break;
      case CfgNodeKind::kCondition:
        label = n.condition != nullptr ? n.condition->ToString() : "cond";
        break;
      case CfgNodeKind::kStatement:
        label = n.stmt != nullptr ? n.stmt->ToString(0) : "synthetic";
        break;
    }
    // Escape quotes and newlines for dot.
    std::string esc;
    for (char c : label) {
      if (c == '"') esc += "\\\"";
      else if (c == '\n') esc += "\\n";
      else esc += c;
    }
    os << "  n" << n.id << " [label=\"" << n.id << ": " << esc << "\"];\n";
    for (int s : n.successors) os << "  n" << n.id << " -> n" << s << ";\n";
  }
  os << "}\n";
  return os.str();
}

Result<std::unique_ptr<Cfg>> Cfg::Build(const BlockStmt& body,
                                        const std::vector<std::string>& params) {
  auto cfg = std::make_unique<Cfg>();
  CfgBuilder builder(cfg.get());
  RETURN_NOT_OK(builder.Run(body, params));
  return cfg;
}

}  // namespace aggify
