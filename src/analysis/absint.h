// Abstract interpretation over the statement CFG (§3.2 analyses layer).
//
// A small forward analysis in the classic style: each variable is mapped to
// an element of the lattice
//
//         kTop                 (any value, including NULL)
//          |
//      kInterval               (a non-NULL INT within [lo, hi])
//          |
//        kConst                (exactly this Value; NULL is Const(NULL))
//          |
//       kBottom                (unreachable / no information yet)
//
// (kConst of a non-integer is ordered directly under kTop.)
//
// joined pointwise at merge points, with widening at loop heads so the
// fixpoint terminates. The interpretation is branch-insensitive (the CFG
// does not discriminate true/false successor order), which is sound: every
// environment over-approximates the set of concrete states reaching its
// node. Transfer functions reuse the engine's own Value operator kernel so
// the abstract semantics of `+`, `/`, Kleene AND/OR, CAST and the scalar
// builtins agree with the interpreter by construction (an operator error —
// division by zero, bad cast — abstracts to kTop, never folds).
//
// Consumers: the simplification pipeline (`simplify.h`) uses per-statement
// entry environments for constant propagation, branch-feasibility pruning
// and static trip-count proofs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "common/result.h"
#include "parser/expr.h"
#include "types/value.h"

namespace aggify {

/// One lattice element. Interval bounds are inclusive; an absent bound is
/// the corresponding infinity. kInterval always describes a *non-NULL* INT
/// (intervals only arise from joining / widening non-NULL integer
/// constants), which is what lets IS NULL decide over them.
struct AbsValue {
  enum class Kind : uint8_t { kBottom, kConst, kInterval, kTop };

  Kind kind = Kind::kBottom;
  Value constant;  ///< kConst payload (may be NULL: DECLARE without init).
  bool has_lo = false, has_hi = false;
  int64_t lo = 0, hi = 0;  ///< kInterval payload.

  static AbsValue Bottom() { return AbsValue{}; }
  static AbsValue Top() {
    AbsValue v;
    v.kind = Kind::kTop;
    return v;
  }
  static AbsValue Const(Value value) {
    AbsValue v;
    v.kind = Kind::kConst;
    v.constant = std::move(value);
    return v;
  }
  /// [lo, hi]; use the `bounded` flags for half-open rays.
  static AbsValue Interval(bool has_lo, int64_t lo, bool has_hi, int64_t hi);

  bool IsBottom() const { return kind == Kind::kBottom; }
  bool IsTop() const { return kind == Kind::kTop; }
  bool IsConst() const { return kind == Kind::kConst; }
  bool IsInterval() const { return kind == Kind::kInterval; }

  bool operator==(const AbsValue& o) const;
  bool operator!=(const AbsValue& o) const { return !(*this == o); }

  std::string ToString() const;
};

/// Least upper bound.
AbsValue Join(const AbsValue& a, const AbsValue& b);

/// Widening: like Join, but interval bounds that grew since `prev` jump
/// straight to infinity, so ascending chains stabilize in O(1) steps.
AbsValue Widen(const AbsValue& prev, const AbsValue& next);

/// Lattice partial order: a ⊑ b (every concrete value a allows, b allows).
bool AbsLeq(const AbsValue& a, const AbsValue& b);

/// Abstract environment: variable name -> lattice element. Variables absent
/// from the map are kTop (unknown), so the empty map is the safe entry
/// state for parameters and anything a query wrote.
using AbsEnv = std::map<std::string, AbsValue>;

AbsEnv JoinEnv(const AbsEnv& a, const AbsEnv& b);
AbsEnv WidenEnv(const AbsEnv& prev, const AbsEnv& next);

/// Abstract evaluation of an expression under `env`. Total: anything the
/// domain cannot track (subqueries, column refs, non-builtin calls,
/// operator errors) evaluates to kTop.
AbsValue EvalAbstract(const Expr& expr, const AbsEnv& env);

/// Decision for a branch condition under EvalPredicate semantics
/// (NULL => false, numeric non-zero => true).
enum class AbsTruth : uint8_t { kTrue, kFalse, kUnknown };
AbsTruth AbstractTruth(const Expr& condition, const AbsEnv& env);

/// The fixpoint result: an entry environment per CFG node.
class AbstractInterpretation {
 public:
  /// Runs the worklist to fixpoint. `cfg` must outlive the result.
  static AbstractInterpretation Run(const Cfg& cfg);

  /// Environment holding *before* node `id` executes. Unreachable nodes
  /// report an empty env with reachable() false.
  const AbsEnv& In(int id) const { return in_[static_cast<size_t>(id)]; }
  /// Environment holding after node `id` executes.
  const AbsEnv& Out(int id) const { return out_[static_cast<size_t>(id)]; }
  bool Reachable(int id) const {
    return reachable_[static_cast<size_t>(id)];
  }

  /// Total node transfer-function applications until the fixpoint: the
  /// widening-termination property tests bound this.
  int iterations() const { return iterations_; }

 private:
  std::vector<AbsEnv> in_, out_;
  std::vector<bool> reachable_;
  int iterations_ = 0;
};

}  // namespace aggify
