#include "analysis/merge_synthesis.h"

#include <algorithm>
#include <map>
#include <utility>

#include "parser/expr.h"

namespace aggify {

namespace {

// ---------------------------------------------------------------------------
// Small expression helpers
// ---------------------------------------------------------------------------

ExprPtr IntLit(int64_t v) { return MakeLiteral(Value::Int(v)); }

/// Treats null as the absent term (symbolic 0). True for integer literals.
bool IsIntLiteral(const Expr* e, int64_t* out) {
  if (e == nullptr) {
    *out = 0;
    return true;
  }
  if (e->kind != ExprKind::kLiteral) return false;
  const Value& v = static_cast<const LiteralExpr&>(*e).value;
  if (!v.is_int()) return false;
  *out = v.int_value();
  return true;
}

/// Symbolic-term addition: null means "term absent", literal ints fold.
ExprPtr AddE(ExprPtr a, ExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  int64_t x, y;
  if (IsIntLiteral(a.get(), &x) && IsIntLiteral(b.get(), &y)) {
    return IntLit(x + y);
  }
  return MakeBinary(BinaryOp::kAdd, std::move(a), std::move(b));
}

ExprPtr NegE(ExprPtr a) {
  if (a == nullptr) return nullptr;
  int64_t x;
  if (IsIntLiteral(a.get(), &x)) return IntLit(-x);
  return MakeUnary(UnaryOp::kNeg, std::move(a));
}

ExprPtr SubE(ExprPtr a, ExprPtr b) {
  if (b == nullptr) return a;
  if (a == nullptr) return NegE(std::move(b));
  int64_t x, y;
  if (IsIntLiteral(a.get(), &x) && IsIntLiteral(b.get(), &y)) {
    return IntLit(x - y);
  }
  return MakeBinary(BinaryOp::kSub, std::move(a), std::move(b));
}

/// Symbolic-term scaling: an absent term stays absent. Only literal*literal
/// and the unit are folded — a literal 0 is deliberately NOT folded away
/// (0 * NULL is NULL in value arithmetic, not 0).
ExprPtr MulE(ExprPtr a, ExprPtr b) {
  if (a == nullptr || b == nullptr) return nullptr;
  int64_t x, y;
  bool ax = IsIntLiteral(a.get(), &x);
  bool by = IsIntLiteral(b.get(), &y);
  if (ax && by) return IntLit(x * y);
  if (ax && x == 1) return b;
  if (by && y == 1) return a;
  return MakeBinary(BinaryOp::kMul, std::move(a), std::move(b));
}

bool ContainsVar(const Expr& e, const std::string& name) {
  std::vector<std::string> refs;
  CollectVariableRefs(e, &refs);
  return std::find(refs.begin(), refs.end(), name) != refs.end();
}

std::set<std::string> VarRefSet(const Expr& e) {
  std::vector<std::string> refs;
  CollectVariableRefs(e, &refs);
  return std::set<std::string>(refs.begin(), refs.end());
}

/// Unwraps nested one-statement blocks; nullptr when a block has != 1
/// statement.
const Stmt* Sole(const Stmt& s) {
  const Stmt* cur = &s;
  while (cur->kind == StmtKind::kBlock) {
    const auto& b = static_cast<const BlockStmt&>(*cur);
    if (b.statements.size() != 1) return nullptr;
    cur = b.statements[0].get();
  }
  return cur;
}

/// Replaces, in place, every VarRef for which `repl` returns non-null.
/// Subquery bodies are not descended (substitution is only ever applied to
/// expressions that row-purity later rejects if they hide a subquery).
void RewriteVarRefs(ExprPtr* slot,
                    const std::function<ExprPtr(const std::string&)>& repl) {
  Expr* e = slot->get();
  if (e == nullptr) return;
  switch (e->kind) {
    case ExprKind::kVarRef: {
      ExprPtr r = repl(static_cast<const VarRefExpr&>(*e).name);
      if (r != nullptr) *slot = std::move(r);
      return;
    }
    case ExprKind::kUnary:
      RewriteVarRefs(&static_cast<UnaryExpr*>(e)->operand, repl);
      return;
    case ExprKind::kBinary: {
      auto* b = static_cast<BinaryExpr*>(e);
      RewriteVarRefs(&b->left, repl);
      RewriteVarRefs(&b->right, repl);
      return;
    }
    case ExprKind::kFunctionCall:
      for (auto& a : static_cast<FunctionCallExpr*>(e)->args) {
        RewriteVarRefs(&a, repl);
      }
      return;
    case ExprKind::kIsNull:
      RewriteVarRefs(&static_cast<IsNullExpr*>(e)->operand, repl);
      return;
    case ExprKind::kCast:
      RewriteVarRefs(&static_cast<CastExpr*>(e)->operand, repl);
      return;
    case ExprKind::kCaseWhen: {
      auto* c = static_cast<CaseWhenExpr*>(e);
      for (auto& arm : c->arms) {
        RewriteVarRefs(&arm.condition, repl);
        RewriteVarRefs(&arm.result, repl);
      }
      if (c->else_result != nullptr) RewriteVarRefs(&c->else_result, repl);
      return;
    }
    case ExprKind::kInList: {
      auto* in = static_cast<InListExpr*>(e);
      RewriteVarRefs(&in->operand, repl);
      for (auto& item : in->list) RewriteVarRefs(&item, repl);
      return;
    }
    default:
      return;  // literals, column refs, subqueries
  }
}

/// The NULL-safe compare-and-keep merge:
///   CASE WHEN @r IS NULL THEN @l WHEN @l IS NULL THEN @r
///        WHEN @r < @l THEN @r ELSE @l END        (min; max uses >)
ExprPtr ExtremumMergeExpr(bool is_min) {
  std::vector<CaseWhenExpr::Arm> arms;
  arms.push_back({std::make_unique<IsNullExpr>(MakeVarRef("@r"), false),
                  MakeVarRef("@l")});
  arms.push_back({std::make_unique<IsNullExpr>(MakeVarRef("@l"), false),
                  MakeVarRef("@r")});
  arms.push_back({MakeBinary(is_min ? BinaryOp::kLt : BinaryOp::kGt,
                             MakeVarRef("@r"), MakeVarRef("@l")),
                  MakeVarRef("@r")});
  return std::make_unique<CaseWhenExpr>(std::move(arms), MakeVarRef("@l"));
}

/// merged = @l + (@r - @c): the baseline-subtracting sum.
ExprPtr SumMergeExpr() {
  return MakeBinary(BinaryOp::kAdd, MakeVarRef("@l"),
                    MakeBinary(BinaryOp::kSub, MakeVarRef("@r"),
                               MakeVarRef("@c")));
}

/// Every variable the body can write (mirrors the fold classifier's notion
/// of loop-invariance: a name never written holds the same value each row).
void CollectAssignedNames(const Stmt& stmt, std::set<std::string>* out) {
  switch (stmt.kind) {
    case StmtKind::kSet:
      out->insert(static_cast<const SetStmt&>(stmt).name);
      break;
    case StmtKind::kDeclareVar:
      out->insert(static_cast<const DeclareVarStmt&>(stmt).name);
      break;
    case StmtKind::kFetch: {
      const auto& f = static_cast<const FetchStmt&>(stmt);
      out->insert(f.into.begin(), f.into.end());
      break;
    }
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
        CollectAssignedNames(*s, out);
      }
      break;
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      CollectAssignedNames(*i.then_branch, out);
      if (i.else_branch != nullptr) CollectAssignedNames(*i.else_branch, out);
      break;
    }
    case StmtKind::kWhile:
      CollectAssignedNames(*static_cast<const WhileStmt&>(stmt).body, out);
      break;
    case StmtKind::kFor: {
      const auto& f = static_cast<const ForStmt&>(stmt);
      out->insert(f.var);
      CollectAssignedNames(*f.body, out);
      break;
    }
    case StmtKind::kTryCatch: {
      const auto& tc = static_cast<const TryCatchStmt&>(stmt);
      CollectAssignedNames(*tc.try_block, out);
      CollectAssignedNames(*tc.catch_block, out);
      break;
    }
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// The synthesizer
// ---------------------------------------------------------------------------

class Synthesizer {
 public:
  Synthesizer(const std::set<std::string>& fields,
              const std::set<std::string>& row_vars,
              const std::function<bool(const std::string&)>& is_pure_call)
      : fields_(fields), row_vars_(row_vars), is_pure_call_(is_pure_call) {}

  std::shared_ptr<const MergePlan> Run(const BlockStmt& body) {
    CollectAssignedNames(body, &assigned_);
    for (const auto& s : body.statements) WalkStmt(*s);
    return BuildPlan();
  }

 private:
  struct Update {
    enum class Form { kSum, kProduct, kExtremum, kDerived };
    std::string field;
    Form form = Form::kSum;
    ExprPtr addend;     ///< kSum: normalized row addend (never null)
    ExprPtr factor;     ///< kProduct: row-pure multiplicative factor
    ExprPtr recompute;  ///< kDerived: g over base accumulators
    bool strict_surface = false;  ///< matched the classifier's exact shape
    bool is_min = false;
    std::vector<GuardTerm> guards;
    size_t position = 0;
  };

  /// The affine view of an update wrt one accumulator: coeff*acc + addend,
  /// with null meaning the term is absent.
  struct Affine {
    bool ok = false;
    ExprPtr coeff;
    ExprPtr addend;
  };

  void Blocker(DiagCode code, const std::string& message) {
    for (const auto& d : blockers_) {
      if (d.code == code && d.message == message) return;
    }
    blockers_.push_back(MakeDiagnostic(code, /*loc=*/"", message));
  }

  /// Shape purity: no column refs, subqueries, aggregate calls, or impure
  /// function calls anywhere.
  bool ShapePure(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kLiteral:
      case ExprKind::kVarRef:
        return true;
      case ExprKind::kUnary:
      case ExprKind::kBinary:
      case ExprKind::kIsNull:
      case ExprKind::kCast:
      case ExprKind::kCaseWhen: {
        for (const Expr* c : e.Children()) {
          if (!ShapePure(*c)) return false;
        }
        return true;
      }
      case ExprKind::kFunctionCall: {
        const auto& f = static_cast<const FunctionCallExpr&>(e);
        if (!is_pure_call_ || !is_pure_call_(f.name)) return false;
        for (const auto& a : f.args) {
          if (!ShapePure(*a)) return false;
        }
        return true;
      }
      default:
        return false;
    }
  }

  /// Row-pure: same value for a given row on any iteration — only row
  /// variables, loop invariants, literals, and pure calls over those.
  /// Assumes locals were already substituted away.
  bool RowPure(const Expr& e) const {
    if (!ShapePure(e)) return false;
    for (const auto& r : VarRefSet(e)) {
      if (row_vars_.count(r) != 0) continue;
      if (assigned_.count(r) == 0) continue;  // loop-invariant
      return false;  // field or unresolved scratch
    }
    return true;
  }

  /// Reads only accumulator fields and loop invariants (a derived
  /// recompute's legal population — no row variables, no scratch).
  bool FieldsOnly(const Expr& e) const {
    if (!ShapePure(e)) return false;
    for (const auto& r : VarRefSet(e)) {
      // Row variables are per-row even though the body never assigns them:
      // an accumulator set from one is a last-value overwrite, not a
      // derived recompute.
      if (row_vars_.count(r) != 0) return false;
      if (fields_.count(r) != 0) continue;
      if (assigned_.count(r) == 0) continue;  // loop-invariant
      return false;
    }
    return true;
  }

  /// Let-inlining: clone `e` with every substitutable scratch local replaced
  /// by its (closed) defining expression. Tainted locals — assigned in a
  /// branch whose scope ended — produce a blocker.
  ExprPtr Substitute(const Expr& e) {
    ExprPtr c = e.Clone();
    RewriteVarRefs(&c, [this](const std::string& name) -> ExprPtr {
      // Taint wins over any (stale, pre-branch) substitution: after a
      // guarded reassignment the local's value is path-dependent even
      // though the outer definition was restored.
      if (tainted_.count(name) != 0) {
        Blocker(DiagCode::kStatefulGuard,
                "local " + name +
                    " is assigned under a guard and read outside it, so it "
                    "carries state across rows");
        return nullptr;
      }
      auto it = subst_.find(name);
      if (it != subst_.end()) return it->second->Clone();
      return nullptr;
    });
    return c;
  }

  std::vector<GuardTerm> CloneGuards() const {
    std::vector<GuardTerm> out;
    out.reserve(guards_.size());
    for (const auto& g : guards_) {
      out.push_back(GuardTerm{g.cond->Clone(), g.negated});
    }
    return out;
  }

  void NoteWrite(const std::string& name) {
    writes_[name].push_back(position_);
  }

  /// Decomposes `e` into coeff*acc + addend with literal folding. Fails
  /// (ok=false) when acc sits under division, CASE, a call, or on both
  /// sides of a multiplication.
  Affine Decompose(const Expr& e, const std::string& acc) {
    Affine r;
    if (!ContainsVar(e, acc)) {
      r.ok = true;
      r.addend = e.Clone();
      return r;
    }
    switch (e.kind) {
      case ExprKind::kVarRef:
        r.ok = true;
        r.coeff = IntLit(1);
        return r;
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        if (u.op != UnaryOp::kNeg) return r;
        Affine a = Decompose(*u.operand, acc);
        if (!a.ok) return r;
        r.ok = true;
        r.coeff = NegE(std::move(a.coeff));
        r.addend = NegE(std::move(a.addend));
        return r;
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        if (b.op == BinaryOp::kAdd || b.op == BinaryOp::kSub) {
          Affine l = Decompose(*b.left, acc);
          Affine rr = Decompose(*b.right, acc);
          if (!l.ok || !rr.ok) return r;
          r.ok = true;
          if (b.op == BinaryOp::kAdd) {
            r.coeff = AddE(std::move(l.coeff), std::move(rr.coeff));
            r.addend = AddE(std::move(l.addend), std::move(rr.addend));
          } else {
            r.coeff = SubE(std::move(l.coeff), std::move(rr.coeff));
            r.addend = SubE(std::move(l.addend), std::move(rr.addend));
          }
          return r;
        }
        if (b.op == BinaryOp::kMul) {
          const Expr* scale = nullptr;
          const Expr* inner = nullptr;
          if (!ContainsVar(*b.left, acc)) {
            scale = b.left.get();
            inner = b.right.get();
          } else if (!ContainsVar(*b.right, acc)) {
            scale = b.right.get();
            inner = b.left.get();
          } else {
            return r;  // acc on both sides: quadratic, not affine
          }
          Affine a = Decompose(*inner, acc);
          if (!a.ok) return r;
          r.ok = true;
          r.coeff = MulE(scale->Clone(), std::move(a.coeff));
          r.addend = MulE(scale->Clone(), std::move(a.addend));
          return r;
        }
        return r;
      }
      default:
        return r;
    }
  }

  bool MatchesStrictSumSurface(const Expr& v, const std::string& acc) const {
    if (v.kind != ExprKind::kBinary) return false;
    const auto& b = static_cast<const BinaryExpr&>(v);
    auto self = [&](const Expr& e) {
      return e.kind == ExprKind::kVarRef &&
             static_cast<const VarRefExpr&>(e).name == acc;
    };
    if (b.op == BinaryOp::kAdd) return self(*b.left) || self(*b.right);
    if (b.op == BinaryOp::kSub) return self(*b.left);
    return false;
  }

  void WalkStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kBlock:
        for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
          WalkStmt(*s);
        }
        break;
      case StmtKind::kDeclareVar: {
        const auto& d = static_cast<const DeclareVarStmt&>(stmt);
        ++position_;
        NoteWrite(d.name);
        // A branch-scoped DECLARE is fine on its own: WalkBranch taints the
        // name on branch exit, so only reads that escape the branch block.
        ExprPtr init = d.initializer != nullptr ? Substitute(*d.initializer)
                                                : MakeLiteral(Value::Null());
        if (RowPure(*init)) {
          // A fresh definition shadows any earlier path-dependent value
          // (branch exit re-taints if this one is itself branch-scoped).
          tainted_.erase(d.name);
          subst_[d.name] = std::shared_ptr<const Expr>(std::move(init));
        } else {
          Blocker(DiagCode::kCrossAccumulatorDep,
                  "local " + d.name + " is initialized from accumulator state");
          tainted_.insert(d.name);
        }
        break;
      }
      case StmtKind::kSet:
        WalkSet(static_cast<const SetStmt&>(stmt));
        break;
      case StmtKind::kIf:
        WalkIf(static_cast<const IfStmt&>(stmt));
        break;
      case StmtKind::kBreak:
        Blocker(DiagCode::kUnrecognizedUpdate,
                "BREAK exits the fold early; partial states over disjoint "
                "partitions cannot reconstruct where it fired");
        break;
      case StmtKind::kContinue:
        Blocker(DiagCode::kUnrecognizedUpdate,
                "CONTINUE skips the remaining updates control-dependently");
        break;
      default:
        Blocker(DiagCode::kUnrecognizedUpdate,
                "statement shape is outside the merge calculus: " +
                    stmt.ToString(0).substr(0, 60));
        break;
    }
  }

  void WalkSet(const SetStmt& s) {
    ++position_;
    NoteWrite(s.name);
    ExprPtr value = Substitute(*s.value);
    if (fields_.count(s.name) == 0) {
      // Scratch local (or a reassigned row variable): substitutable while
      // row-pure; the If walker taints branch-scoped definitions on exit.
      if (RowPure(*value)) {
        tainted_.erase(s.name);
        subst_[s.name] = std::shared_ptr<const Expr>(std::move(value));
      } else {
        Blocker(DiagCode::kCrossAccumulatorDep,
                "local " + s.name +
                    " is computed from accumulator state; its value cannot "
                    "be reconstructed when partitions merge");
        tainted_.insert(s.name);
        subst_.erase(s.name);
      }
      return;
    }

    Update u;
    u.field = s.name;
    u.position = position_;
    u.guards = CloneGuards();

    if (!ContainsVar(*value, s.name)) {
      if (FieldsOnly(*value)) {
        if (!guards_.empty()) {
          Blocker(DiagCode::kStatefulGuard,
                  "derived update of " + s.name +
                      " is conditional; the merged value cannot be "
                      "recomputed from the merged bases");
          return;
        }
        u.form = Update::Form::kDerived;
        u.recompute = std::move(value);
        updates_.push_back(std::move(u));
        return;
      }
      if (RowPure(*value)) {
        Blocker(DiagCode::kNonCommutativeUpdate,
                "accumulator " + s.name + " = " + s.value->ToString() +
                    " is a last-value overwrite: the result depends on "
                    "which row arrives last");
        return;
      }
      Blocker(DiagCode::kCrossAccumulatorDep,
              "update of " + s.name +
                  " mixes row values with other accumulators; it is "
                  "neither a fold nor a pure derived recompute");
      return;
    }

    Affine a = Decompose(*value, s.name);
    if (!a.ok) {
      Blocker(DiagCode::kUnrecognizedUpdate,
              "update " + s.name + " = " + s.value->ToString() +
                  " does not decompose to coeff*" + s.name + " + row term");
      return;
    }
    int64_t c0 = 0;
    const bool coeff_const = IsIntLiteral(a.coeff.get(), &c0);
    if (coeff_const && c0 == 1) {
      if (a.addend != nullptr && !RowPure(*a.addend)) {
        Blocker(DiagCode::kCrossAccumulatorDep,
                "sum addend " + a.addend->ToString() + " of " + s.name +
                    " reads other accumulators, so per-partition deltas "
                    "are not independent");
        return;
      }
      u.form = Update::Form::kSum;
      u.addend = a.addend != nullptr ? std::move(a.addend) : IntLit(0);
      u.strict_surface = MatchesStrictSumSurface(*s.value, s.name);
      updates_.push_back(std::move(u));
      return;
    }
    if (a.addend == nullptr && a.coeff != nullptr && RowPure(*a.coeff) &&
        !(coeff_const && c0 == 0)) {
      u.form = Update::Form::kProduct;
      u.factor = std::move(a.coeff);
      updates_.push_back(std::move(u));
      return;
    }
    if (coeff_const && c0 == 0) {
      Blocker(DiagCode::kNonCommutativeUpdate,
              "the accumulator coefficient of " + s.name +
                  " folds to 0: " + s.value->ToString() +
                  " overwrites rather than folds");
      return;
    }
    Blocker(DiagCode::kNonCommutativeUpdate,
            "affine coefficient " +
                (a.coeff != nullptr ? a.coeff->ToString() : std::string("0")) +
                " of " + s.name +
                " is not the literal 1; the update is not commutative "
                "under interleaved morsel partitioning");
  }

  void WalkIf(const IfStmt& i) {
    if (TryExtremum(i)) return;
    ExprPtr cond = Substitute(*i.condition);
    if (!RowPure(*cond)) {
      Blocker(DiagCode::kStatefulGuard,
              "guard " + i.condition->ToString() +
                  " reads accumulator state outside the compare-and-keep "
                  "extremum pattern");
      // Keep walking so every additional blocker in the branches is still
      // reported in this one pass (the plan is already dead).
    }
    const size_t gi = guards_.size();
    guards_.push_back(GuardTerm{std::move(cond), false});
    WalkBranch(*i.then_branch);
    if (i.else_branch != nullptr) {
      guards_[gi].negated = true;
      WalkBranch(*i.else_branch);
    }
    guards_.pop_back();
  }

  /// Walks a branch with a scoped substitution map: locals (re)defined
  /// inside the branch are tainted on exit — their value is path-dependent.
  void WalkBranch(const Stmt& branch) {
    auto saved = subst_;
    WalkStmt(branch);
    for (const auto& [name, expr] : subst_) {
      auto it = saved.find(name);
      if (it == saved.end() || it->second.get() != expr.get()) {
        tainted_.insert(name);
      }
    }
    subst_ = std::move(saved);
  }

  /// Matches `cond` as a compare of the accumulator against a candidate
  /// equal (textually) to `assigned`. Fills is_min with the keep direction.
  bool MatchCompareKeep(const Expr& cond_in, const std::string& acc,
                        const Expr& assigned, bool allow_null_peel,
                        bool* is_min, bool* null_peeled) const {
    const Expr* cond = &cond_in;
    *null_peeled = false;
    if (allow_null_peel && cond->kind == ExprKind::kBinary &&
        static_cast<const BinaryExpr&>(*cond).op == BinaryOp::kOr) {
      const auto& orx = static_cast<const BinaryExpr&>(*cond);
      auto is_null_guard = [&](const Expr& e) {
        if (e.kind != ExprKind::kIsNull) return false;
        const auto& n = static_cast<const IsNullExpr&>(e);
        return !n.negated && n.operand->kind == ExprKind::kVarRef &&
               static_cast<const VarRefExpr&>(*n.operand).name == acc;
      };
      if (is_null_guard(*orx.left)) {
        cond = orx.right.get();
        *null_peeled = true;
      } else if (is_null_guard(*orx.right)) {
        cond = orx.left.get();
        *null_peeled = true;
      } else {
        return false;
      }
    }
    if (cond->kind != ExprKind::kBinary) return false;
    const auto& cmp = static_cast<const BinaryExpr&>(*cond);
    auto is_acc = [&](const Expr& e) {
      return e.kind == ExprKind::kVarRef &&
             static_cast<const VarRefExpr&>(e).name == acc;
    };
    const Expr* candidate = nullptr;
    bool acc_on_left = false;
    if (is_acc(*cmp.left)) {
      candidate = cmp.right.get();
      acc_on_left = true;
    } else if (is_acc(*cmp.right)) {
      candidate = cmp.left.get();
    } else {
      return false;
    }
    if (candidate->ToString() != assigned.ToString()) return false;
    switch (cmp.op) {
      case BinaryOp::kLt:
      case BinaryOp::kLe:
        *is_min = !acc_on_left;  // candidate < acc keeps smaller
        return true;
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        *is_min = acc_on_left;
        return true;
      default:
        return false;
    }
  }

  /// The two extremum shapes:
  ///   A. IF (e < acc [OR acc IS NULL]) SET acc = e           (no ELSE)
  ///   B. IF (acc IS NULL) SET acc = e ELSE IF (e < acc) SET acc = e
  /// Form B is the common NULL-seeded extremum the classifier rejects.
  bool TryExtremum(const IfStmt& i) {
    // Form A.
    if (i.else_branch == nullptr) {
      const Stmt* then_s = Sole(*i.then_branch);
      if (then_s == nullptr || then_s->kind != StmtKind::kSet) return false;
      const auto& set = static_cast<const SetStmt&>(*then_s);
      if (fields_.count(set.name) == 0) return false;
      bool is_min = false, peeled = false;
      if (!MatchCompareKeep(*i.condition, set.name, *set.value,
                            /*allow_null_peel=*/true, &is_min, &peeled)) {
        return false;
      }
      ExprPtr cand = Substitute(*set.value);
      if (!RowPure(*cand)) return false;
      RecordExtremum(set.name, is_min);
      return true;
    }
    // Form B.
    if (i.condition->kind != ExprKind::kIsNull) return false;
    const auto& null_test = static_cast<const IsNullExpr&>(*i.condition);
    if (null_test.negated || null_test.operand->kind != ExprKind::kVarRef) {
      return false;
    }
    const std::string& acc =
        static_cast<const VarRefExpr&>(*null_test.operand).name;
    if (fields_.count(acc) == 0) return false;
    const Stmt* seed_s = Sole(*i.then_branch);
    if (seed_s == nullptr || seed_s->kind != StmtKind::kSet) return false;
    const auto& seed = static_cast<const SetStmt&>(*seed_s);
    if (seed.name != acc) return false;
    const Stmt* else_s = Sole(*i.else_branch);
    if (else_s == nullptr || else_s->kind != StmtKind::kIf) return false;
    const auto& inner = static_cast<const IfStmt&>(*else_s);
    if (inner.else_branch != nullptr) return false;
    const Stmt* keep_s = Sole(*inner.then_branch);
    if (keep_s == nullptr || keep_s->kind != StmtKind::kSet) return false;
    const auto& keep = static_cast<const SetStmt&>(*keep_s);
    if (keep.name != acc ||
        keep.value->ToString() != seed.value->ToString()) {
      return false;
    }
    bool is_min = false, peeled = false;
    if (!MatchCompareKeep(*inner.condition, acc, *keep.value,
                          /*allow_null_peel=*/false, &is_min, &peeled)) {
      return false;
    }
    ExprPtr cand = Substitute(*seed.value);
    if (!RowPure(*cand)) return false;
    RecordExtremum(acc, is_min);
    return true;
  }

  void RecordExtremum(const std::string& field, bool is_min) {
    ++position_;
    NoteWrite(field);
    Update u;
    u.field = field;
    u.form = Update::Form::kExtremum;
    u.is_min = is_min;
    u.position = position_;
    u.guards = CloneGuards();
    updates_.push_back(std::move(u));
  }

  /// A product's factor and guards are re-evaluated against the row
  /// environment AFTER the body ran. If the body ever writes a variable
  /// they reference, the recorded expression would read the overwritten
  /// value — reject.
  void CheckFactorStability(const Update& u) {
    std::set<std::string> refs = VarRefSet(*u.factor);
    for (const auto& g : u.guards) {
      std::set<std::string> gr = VarRefSet(*g.cond);
      refs.insert(gr.begin(), gr.end());
    }
    for (const auto& r : refs) {
      if (writes_.count(r) != 0) {
        Blocker(DiagCode::kCrossAccumulatorDep,
                "product factor of " + u.field + " reads " + r +
                    ", which the body also assigns; the recorded factor "
                    "would observe the overwritten value");
        return;
      }
    }
  }

  std::shared_ptr<const MergePlan> BuildPlan() {
    auto plan = std::make_shared<MergePlan>();
    std::map<std::string, std::vector<const Update*>> by_field;
    for (const auto& u : updates_) by_field[u.field].push_back(&u);

    int aux_counter = 0;
    std::vector<FieldMergePlan> bases;
    std::vector<std::pair<FieldMergePlan, const Update*>> derived;
    for (const auto& f : fields_) {
      FieldMergePlan fp;
      fp.field = f;
      auto it = by_field.find(f);
      if (it == by_field.end()) {
        fp.rule = MergeRuleKind::kInvariant;
        fp.note = "never updated; the shared baseline passes through";
        bases.push_back(std::move(fp));
        continue;
      }
      const auto& ups = it->second;
      auto all_form = [&](Update::Form form) {
        for (const Update* u : ups) {
          if (u->form != form) return false;
        }
        return true;
      };
      if (all_form(Update::Form::kExtremum)) {
        bool is_min = ups[0]->is_min;
        bool mixed = false;
        for (const Update* u : ups) {
          if (u->is_min != is_min) mixed = true;
        }
        if (mixed) {
          Blocker(DiagCode::kNonCommutativeUpdate,
                  "accumulator " + f +
                      " mixes min and max compare-and-keep updates");
          continue;
        }
        fp.rule = MergeRuleKind::kExtremum;
        fp.is_min = is_min;
        for (const Update* u : ups) {
          if (!u->guards.empty()) fp.guarded = true;
        }
        fp.merge_expr = ExtremumMergeExpr(is_min);
        fp.note = std::string("compare-and-keep ") + (is_min ? "min" : "max") +
                  ": idempotent NULL-safe merge";
        bases.push_back(std::move(fp));
        continue;
      }
      if (all_form(Update::Form::kSum)) {
        bool guarded = false;
        bool strict = true;
        for (const Update* u : ups) {
          if (!u->guards.empty()) guarded = true;
          if (!u->strict_surface) strict = false;
        }
        fp.guarded = guarded;
        fp.rule = guarded ? MergeRuleKind::kGuardedSum
                          : (strict && ups.size() == 1
                                 ? MergeRuleKind::kFoldAlgebra
                                 : MergeRuleKind::kAffineSum);
        if (ups.size() == 1) fp.row_term = ups[0]->addend->Clone();
        fp.merge_expr = SumMergeExpr();
        fp.note =
            fp.rule == MergeRuleKind::kGuardedSum
                ? "row-pure guards select rows; fired deltas merge by the "
                  "baseline-subtracting sum"
                : (fp.rule == MergeRuleKind::kAffineSum
                       ? "affine update normalized to unit accumulator "
                         "coefficient"
                       : "strict commutative-fold sum");
        bases.push_back(std::move(fp));
        continue;
      }
      if (all_form(Update::Form::kProduct)) {
        fp.rule = MergeRuleKind::kProductAugmented;
        const std::string img = "@__img" + std::to_string(aux_counter);
        const std::string zc = "@__zc" + std::to_string(aux_counter);
        ++aux_counter;
        for (const Update* u : ups) {
          if (!u->guards.empty()) fp.guarded = true;
          CheckFactorStability(*u);
          AuxUpdate image;
          image.name = img;
          image.kind = AuxUpdate::Kind::kFactorImage;
          image.factor = u->factor->Clone();
          for (const auto& g : u->guards) {
            image.guards.push_back(GuardTerm{g.cond->Clone(), g.negated});
          }
          AuxUpdate zero;
          zero.name = zc;
          zero.kind = AuxUpdate::Kind::kZeroCount;
          zero.factor = u->factor->Clone();
          for (const auto& g : u->guards) {
            zero.guards.push_back(GuardTerm{g.cond->Clone(), g.negated});
          }
          fp.aux.push_back(std::move(image));
          fp.aux.push_back(std::move(zero));
        }
        fp.merge_expr =
            MakeBinary(BinaryOp::kMul, MakeVarRef("@c"), MakeVarRef(img));
        fp.note = "product fold via state augmentation: merged = baseline * "
                  "(" + img + "_l * " + img + "_r); " + zc +
                  " counts zero factors, certifying the division-free merge";
        bases.push_back(std::move(fp));
        continue;
      }
      if (ups.size() == 1 && ups[0]->form == Update::Form::kDerived) {
        fp.rule = MergeRuleKind::kDerived;
        fp.recompute = ups[0]->recompute->Clone();
        derived.emplace_back(std::move(fp), ups[0]);
        continue;
      }
      if (all_form(Update::Form::kDerived)) {
        Blocker(DiagCode::kCrossAccumulatorDep,
                "accumulator " + f +
                    " has multiple derived assignments; only a single "
                    "final recompute is reconstructible");
        continue;
      }
      Blocker(DiagCode::kNonCommutativeUpdate,
              "accumulator " + f +
                  " mixes update shapes that compose into no homomorphism");
    }

    // Derived fields: every dependency must be a non-derived base whose
    // updates ALL precede the derived assignment in the body (otherwise the
    // final derived value is not g(final bases)).
    std::sort(derived.begin(), derived.end(),
              [](const auto& a, const auto& b) {
                return a.second->position < b.second->position;
              });
    for (auto& [fp, u] : derived) {
      bool ok = true;
      std::string deps;
      for (const auto& r : VarRefSet(*fp.recompute)) {
        if (fields_.count(r) == 0) {
          // A loop invariant passes FieldsOnly, but Merge only sees the
          // aggregate state: the recompute could not be evaluated there.
          Blocker(DiagCode::kCrossAccumulatorDep,
                  "derived accumulator " + fp.field + " reads " + r +
                      ", which is not part of the merged aggregate state");
          ok = false;
          continue;
        }
        if (!deps.empty()) deps += ", ";
        deps += r;
        const FieldMergePlan* dep = nullptr;
        for (const auto& b : bases) {
          if (b.field == r) dep = &b;
        }
        if (dep == nullptr) {
          Blocker(DiagCode::kCrossAccumulatorDep,
                  "derived accumulator " + fp.field + " reads " + r +
                      ", which has no mergeable base plan");
          ok = false;
          continue;
        }
        auto wit = writes_.find(r);
        if (wit != writes_.end()) {
          for (size_t pos : wit->second) {
            if (pos > u->position) {
              Blocker(DiagCode::kCrossAccumulatorDep,
                      "derived accumulator " + fp.field + " reads " + r +
                          ", which is updated later in the body; the final "
                          "value is not a function of the final bases");
              ok = false;
              break;
            }
          }
        }
      }
      if (!ok) continue;
      fp.note = "derived: recomputed from the merged bases (" +
                (deps.empty() ? std::string("constants") : deps) + ")";
      bases.push_back(std::move(fp));
    }

    plan->blockers = std::move(blockers_);
    plan->mergeable = plan->blockers.empty();
    if (plan->mergeable) plan->fields = std::move(bases);
    return plan;
  }

  const std::set<std::string>& fields_;
  const std::set<std::string>& row_vars_;
  const std::function<bool(const std::string&)>& is_pure_call_;
  std::set<std::string> assigned_;
  /// Let-inlining map: scratch local -> closed row-pure definition.
  std::map<std::string, std::shared_ptr<const Expr>> subst_;
  /// Locals whose substitution became path-dependent (branch-scoped).
  std::set<std::string> tainted_;
  /// Active guard stack (conjunction of row-pure conditions).
  std::vector<GuardTerm> guards_;
  /// Every write position per variable name (1-based statement order).
  std::map<std::string, std::vector<size_t>> writes_;
  std::vector<Update> updates_;
  std::vector<Diagnostic> blockers_;
  size_t position_ = 0;
};

}  // namespace

const char* MergeRuleKindName(MergeRuleKind kind) {
  switch (kind) {
    case MergeRuleKind::kFoldAlgebra: return "fold-algebra";
    case MergeRuleKind::kAffineSum: return "affine-sum";
    case MergeRuleKind::kGuardedSum: return "guarded-sum";
    case MergeRuleKind::kExtremum: return "extremum";
    case MergeRuleKind::kProductAugmented: return "product-augmented";
    case MergeRuleKind::kDerived: return "derived";
    case MergeRuleKind::kInvariant: return "invariant";
  }
  return "invariant";
}

std::vector<std::string> MergePlan::DescribeRules() const {
  std::vector<std::string> out;
  for (const auto& f : fields) {
    std::string line = f.field + ": " + MergeRuleKindName(f.rule);
    if (f.merge_expr != nullptr) {
      line += "  merged = " + f.merge_expr->ToString();
    }
    if (f.recompute != nullptr) {
      line += "  recomputed = " + f.recompute->ToString();
    }
    out.push_back(std::move(line));
  }
  return out;
}

std::shared_ptr<const MergePlan> SynthesizeMerge(
    const BlockStmt& body, const std::set<std::string>& fields,
    const std::set<std::string>& row_vars,
    const std::function<bool(const std::string&)>& is_pure_call) {
  Synthesizer synthesizer(fields, row_vars, is_pure_call);
  return synthesizer.Run(body);
}

}  // namespace aggify
