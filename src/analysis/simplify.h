// The simplification pipeline: semantics-preserving cleanup of a procedural
// block, run by the Aggify driver *before* Eq. 1–4 loop-set inference so the
// synthesized Agg_Δ never pays for dead stores, constant-false guards, or
// constant expressions the script author left behind (DESIGN invariant 7).
//
// Passes, per iteration (bounded fixpoint):
//   1. constant propagation + folding — abstract interpretation (absint.h)
//      proves expressions constant; proven constants (which, by the domain's
//      invariant, evaluate without error) are replaced by literals.
//   2. branch pruning — IF/WHILE conditions decided by the same environments
//      replace the statement with the taken branch (or remove it). AGG303.
//   3. dead-store elimination — SETs whose target is not live-out
//      (`DataflowResult` liveness) and not observable, restricted to
//      value-independent-error expressions (no /, %, CAST, calls,
//      subqueries, concat). AGG301.
// A final reporting pass flags loop-invariant guards (AGG305).
//
// What is never touched: queries and DML (their expressions belong to the
// relational layer), anything inside a GuardedRewriteStmt (its fallback must
// stay a faithful clone of the original loop), and statements inside
// TRY/CATCH for dead-store purposes (an erroring store is observable there).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/result.h"
#include "parser/statement.h"

namespace aggify {

struct SimplifyOptions {
  bool fold_constants = true;
  bool prune_branches = true;
  bool eliminate_dead_stores = true;
  bool note_invariant_guards = true;
  /// Fold/prune/DSE rounds before giving up on reaching a fixpoint.
  int max_passes = 4;
};

struct SimplifyStats {
  int constants_folded = 0;
  int branches_pruned = 0;
  int dead_stores_removed = 0;
  int invariant_guards = 0;
  /// AGG301 / AGG303 warnings and AGG305 notes, in discovery order.
  std::vector<Diagnostic> diagnostics;

  bool Changed() const {
    return constants_folded + branches_pruned + dead_stores_removed > 0;
  }
};

/// Simplifies `block` in place. `params` are defined-at-entry names (CFG
/// entry defs); `observable_vars`, when non-null, lists variables whose
/// final values are program outputs and whose stores must survive even when
/// liveness says otherwise (anonymous client blocks). `loc` prefixes
/// diagnostics ("function:" / "block:").
Result<SimplifyStats> SimplifyBlock(BlockStmt* block,
                                    const std::vector<std::string>& params,
                                    const std::set<std::string>* observable_vars,
                                    const std::string& loc,
                                    const SimplifyOptions& options = {});

}  // namespace aggify
