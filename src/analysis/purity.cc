#include "analysis/purity.h"

#include <algorithm>
#include <cctype>

namespace aggify {

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool IsTempName(const std::string& name) {
  return !name.empty() && (name[0] == '@' || name[0] == '#');
}

/// One pass over a statement tree: the maximum local effect (with the first
/// piece of evidence that raised it there) plus every call target seen.
struct EffectAccum {
  EffectLevel level = EffectLevel::kPure;
  std::string evidence;
  std::set<std::string> callees;

  void Raise(EffectLevel l, const std::string& why) {
    if (l > level) {
      level = l;
      evidence = why;
    }
  }
};

void WalkQuery(const SelectStmt& query, EffectAccum* acc);

void WalkExpr(const Expr& expr, EffectAccum* acc) {
  switch (expr.kind) {
    case ExprKind::kFunctionCall:
      acc->callees.insert(
          Lower(static_cast<const FunctionCallExpr&>(expr).name));
      break;
    case ExprKind::kScalarSubquery: {
      const auto& e = static_cast<const ScalarSubqueryExpr&>(expr);
      acc->Raise(EffectLevel::kReadsDatabase, "evaluates a scalar subquery");
      WalkQuery(*e.query, acc);
      break;
    }
    case ExprKind::kExists: {
      const auto& e = static_cast<const ExistsExpr&>(expr);
      acc->Raise(EffectLevel::kReadsDatabase, "evaluates an EXISTS subquery");
      WalkQuery(*e.query, acc);
      break;
    }
    case ExprKind::kInList: {
      const auto& e = static_cast<const InListExpr&>(expr);
      if (e.subquery != nullptr) {
        acc->Raise(EffectLevel::kReadsDatabase, "evaluates an IN subquery");
        WalkQuery(*e.subquery, acc);
      }
      break;
    }
    default:
      break;
  }
  for (const Expr* child : expr.Children()) WalkExpr(*child, acc);
}

void WalkTableRef(const TableRef& ref, EffectAccum* acc) {
  switch (ref.kind) {
    case TableRef::Kind::kSubquery:
      WalkQuery(*ref.subquery, acc);
      break;
    case TableRef::Kind::kJoin:
      WalkTableRef(*ref.left, acc);
      WalkTableRef(*ref.right, acc);
      if (ref.join_condition != nullptr) WalkExpr(*ref.join_condition, acc);
      break;
    case TableRef::Kind::kBaseTable:
      break;
  }
}

void WalkQuery(const SelectStmt& query, EffectAccum* acc) {
  acc->Raise(EffectLevel::kReadsDatabase, "evaluates a query");
  for (const auto& cte : query.ctes) WalkQuery(*cte.query, acc);
  if (query.top_n != nullptr) WalkExpr(*query.top_n, acc);
  for (const auto& item : query.items) WalkExpr(*item.expr, acc);
  for (const auto& ref : query.from) WalkTableRef(*ref, acc);
  if (query.where != nullptr) WalkExpr(*query.where, acc);
  for (const auto& g : query.group_by) WalkExpr(*g, acc);
  if (query.having != nullptr) WalkExpr(*query.having, acc);
  for (const auto& o : query.order_by) WalkExpr(*o.expr, acc);
  if (query.union_all != nullptr) WalkQuery(*query.union_all, acc);
}

void WalkStmt(const Stmt& stmt, EffectAccum* acc) {
  switch (stmt.kind) {
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
        WalkStmt(*s, acc);
      }
      break;
    case StmtKind::kDeclareVar: {
      const auto& s = static_cast<const DeclareVarStmt&>(stmt);
      if (s.initializer != nullptr) WalkExpr(*s.initializer, acc);
      break;
    }
    case StmtKind::kSet:
      WalkExpr(*static_cast<const SetStmt&>(stmt).value, acc);
      break;
    case StmtKind::kIf: {
      const auto& s = static_cast<const IfStmt&>(stmt);
      WalkExpr(*s.condition, acc);
      WalkStmt(*s.then_branch, acc);
      if (s.else_branch != nullptr) WalkStmt(*s.else_branch, acc);
      break;
    }
    case StmtKind::kWhile: {
      const auto& s = static_cast<const WhileStmt&>(stmt);
      WalkExpr(*s.condition, acc);
      WalkStmt(*s.body, acc);
      break;
    }
    case StmtKind::kFor: {
      const auto& s = static_cast<const ForStmt&>(stmt);
      WalkExpr(*s.init, acc);
      WalkExpr(*s.bound, acc);
      if (s.step != nullptr) WalkExpr(*s.step, acc);
      WalkStmt(*s.body, acc);
      break;
    }
    case StmtKind::kDeclareCursor:
      WalkQuery(*static_cast<const DeclareCursorStmt&>(stmt).query, acc);
      break;
    case StmtKind::kReturn: {
      const auto& s = static_cast<const ReturnStmt&>(stmt);
      if (s.value != nullptr) WalkExpr(*s.value, acc);
      break;
    }
    case StmtKind::kDeclareTempTable:
      acc->Raise(EffectLevel::kWritesTempState,
                 "declares table variable " +
                     static_cast<const DeclareTempTableStmt&>(stmt).name);
      break;
    case StmtKind::kInsert: {
      const auto& s = static_cast<const InsertStmt&>(stmt);
      acc->Raise(IsTempName(s.table) ? EffectLevel::kWritesTempState
                                     : EffectLevel::kWritesPersistentState,
                 "INSERT INTO " + s.table);
      for (const auto& row : s.values_rows) {
        for (const auto& e : row) WalkExpr(*e, acc);
      }
      if (s.select != nullptr) WalkQuery(*s.select, acc);
      break;
    }
    case StmtKind::kUpdate: {
      const auto& s = static_cast<const UpdateStmt&>(stmt);
      acc->Raise(IsTempName(s.table) ? EffectLevel::kWritesTempState
                                     : EffectLevel::kWritesPersistentState,
                 "UPDATE " + s.table);
      for (const auto& a : s.assignments) WalkExpr(*a.second, acc);
      if (s.where != nullptr) WalkExpr(*s.where, acc);
      break;
    }
    case StmtKind::kDelete: {
      const auto& s = static_cast<const DeleteStmt&>(stmt);
      acc->Raise(IsTempName(s.table) ? EffectLevel::kWritesTempState
                                     : EffectLevel::kWritesPersistentState,
                 "DELETE FROM " + s.table);
      if (s.where != nullptr) WalkExpr(*s.where, acc);
      break;
    }
    case StmtKind::kTryCatch: {
      const auto& s = static_cast<const TryCatchStmt&>(stmt);
      WalkStmt(*s.try_block, acc);
      WalkStmt(*s.catch_block, acc);
      break;
    }
    case StmtKind::kExecQuery:
      WalkQuery(*static_cast<const ExecQueryStmt&>(stmt).query, acc);
      break;
    case StmtKind::kMultiAssign:
      WalkQuery(*static_cast<const MultiAssignStmt&>(stmt).query, acc);
      break;
    case StmtKind::kGuardedRewrite: {
      // Semantically the statement IS its MultiAssign / set-oriented DML
      // (see statement.h); the fallback clone re-states the loop's effects.
      const auto& g = static_cast<const GuardedRewriteStmt&>(stmt);
      if (g.rewritten_dml != nullptr) {
        WalkStmt(*g.rewritten_dml, acc);
      } else {
        WalkQuery(*g.rewritten->query, acc);
      }
      break;
    }
    default:
      break;  // cursor control flow / BREAK / CONTINUE: no effects
  }
}

}  // namespace

const char* EffectLevelName(EffectLevel level) {
  switch (level) {
    case EffectLevel::kPure: return "pure";
    case EffectLevel::kReadsDatabase: return "reads-database";
    case EffectLevel::kWritesTempState: return "writes-temp-state";
    case EffectLevel::kWritesPersistentState: return "writes-persistent-state";
    case EffectLevel::kUnknown: return "unknown";
  }
  return "unknown";
}

void CollectCalledFunctions(const Stmt& stmt, std::set<std::string>* out) {
  EffectAccum acc;
  WalkStmt(stmt, &acc);
  out->insert(acc.callees.begin(), acc.callees.end());
}

void CollectCalledFunctions(const Expr& expr, std::set<std::string>* out) {
  EffectAccum acc;
  WalkExpr(expr, &acc);
  out->insert(acc.callees.begin(), acc.callees.end());
}

void CollectCalledFunctions(const SelectStmt& query,
                            std::set<std::string>* out) {
  EffectAccum acc;
  WalkQuery(query, &acc);
  out->insert(acc.callees.begin(), acc.callees.end());
}

CallGraph CallGraph::Build(const Catalog& catalog,
                           BuiltinPredicate is_builtin) {
  CallGraph graph;
  graph.is_builtin_ = std::move(is_builtin);
  for (const std::string& name : catalog.FunctionNames()) {
    auto def = catalog.GetFunction(name);
    if (!def.ok()) continue;
    EffectAccum acc;
    if ((*def)->body != nullptr) WalkStmt(*(*def)->body, &acc);
    Node node;
    node.callees = std::move(acc.callees);
    node.local.level = acc.level;
    node.local.evidence = acc.evidence;
    node.combined = node.local;
    graph.nodes_.emplace(Lower(name), std::move(node));
  }

  // Least fixpoint of level(f) = max(local(f), levels of callees). The
  // lattice has height 5 and the transfer function is monotone, so this
  // terminates in at most |lattice| * |functions| sweeps.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [name, node] : graph.nodes_) {
      FunctionEffects eff = node.local;
      for (const std::string& callee : node.callees) {
        if (graph.IsBuiltin(callee)) continue;
        auto it = graph.nodes_.find(callee);
        if (it == graph.nodes_.end()) {
          if (EffectLevel::kUnknown > eff.level) {
            eff.level = EffectLevel::kUnknown;
            eff.evidence = "calls unknown function " + callee;
          }
        } else if (it->second.combined.level > eff.level) {
          eff.level = it->second.combined.level;
          eff.evidence = "calls " + callee + " (" +
                         EffectLevelName(eff.level) + ": " +
                         it->second.combined.evidence + ")";
        }
      }
      if (eff.level != node.combined.level) {
        node.combined = std::move(eff);
        changed = true;
      }
    }
  }
  return graph;
}

FunctionEffects CallGraph::EffectsOf(const std::string& name) const {
  std::string key = Lower(name);
  if (IsBuiltin(key)) {
    return FunctionEffects{EffectLevel::kPure, "built-in scalar"};
  }
  auto it = nodes_.find(key);
  if (it != nodes_.end()) return it->second.combined;
  return FunctionEffects{EffectLevel::kUnknown,
                         "function " + key + " is not in the catalog"};
}

std::vector<std::string> CallGraph::Callees(const std::string& name) const {
  auto it = nodes_.find(Lower(name));
  if (it == nodes_.end()) return {};
  return std::vector<std::string>(it->second.callees.begin(),
                                  it->second.callees.end());
}

FunctionEffects CallGraph::StatementEffects(const Stmt& stmt) const {
  EffectAccum acc;
  WalkStmt(stmt, &acc);
  FunctionEffects eff{acc.level, acc.evidence};
  for (const std::string& callee : acc.callees) {
    FunctionEffects callee_eff = EffectsOf(callee);
    if (callee_eff.level > eff.level) {
      eff.level = callee_eff.level;
      eff.evidence = "calls " + callee + " (" + callee_eff.evidence + ")";
    }
  }
  return eff;
}

std::vector<std::string> CallGraph::FunctionNames() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [name, node] : nodes_) out.push_back(name);
  return out;
}

}  // namespace aggify
