#include "analysis/fold_classifier.h"

namespace aggify {

namespace {

/// Every variable the body can write (SET targets, declarations, FETCHes of
/// nested cursors, FOR induction variables). A variable outside this set
/// holds the same value on every iteration — loop-invariant.
void CollectAssigned(const Stmt& stmt, std::set<std::string>* out) {
  switch (stmt.kind) {
    case StmtKind::kSet:
      out->insert(static_cast<const SetStmt&>(stmt).name);
      break;
    case StmtKind::kDeclareVar:
      out->insert(static_cast<const DeclareVarStmt&>(stmt).name);
      break;
    case StmtKind::kFetch: {
      const auto& f = static_cast<const FetchStmt&>(stmt);
      out->insert(f.into.begin(), f.into.end());
      break;
    }
    case StmtKind::kMultiAssign: {
      const auto& m = static_cast<const MultiAssignStmt&>(stmt);
      out->insert(m.targets.begin(), m.targets.end());
      break;
    }
    case StmtKind::kGuardedRewrite: {
      const auto& g = static_cast<const GuardedRewriteStmt&>(stmt);
      if (g.rewritten != nullptr) {  // DML form assigns no variables
        out->insert(g.rewritten->targets.begin(), g.rewritten->targets.end());
      }
      break;
    }
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
        CollectAssigned(*s, out);
      }
      break;
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      CollectAssigned(*i.then_branch, out);
      if (i.else_branch != nullptr) CollectAssigned(*i.else_branch, out);
      break;
    }
    case StmtKind::kWhile:
      CollectAssigned(*static_cast<const WhileStmt&>(stmt).body, out);
      break;
    case StmtKind::kFor: {
      const auto& f = static_cast<const ForStmt&>(stmt);
      out->insert(f.var);
      CollectAssigned(*f.body, out);
      break;
    }
    case StmtKind::kTryCatch: {
      const auto& tc = static_cast<const TryCatchStmt&>(stmt);
      CollectAssigned(*tc.try_block, out);
      CollectAssigned(*tc.catch_block, out);
      break;
    }
    default:
      break;
  }
}

class Classifier {
 public:
  Classifier(const std::set<std::string>& fields,
             const std::set<std::string>& row_vars,
             const std::function<bool(const std::string&)>& is_pure_call)
      : fields_(fields), row_pure_(row_vars), is_pure_call_(is_pure_call) {}

  BodyClassification Run(const BlockStmt& body) {
    CollectAssigned(body, &assigned_);
    for (const auto& s : body.statements) {
      ClassifyStmt(*s, /*conditional=*/false);
    }

    BodyClassification result;
    for (const auto& [field, kind] : folds_) {
      result.folds.push_back(FieldFold{field, kind});
      if (kind != FoldKind::kSum && kind != FoldKind::kProduct &&
          kind != FoldKind::kGuardedMin && kind != FoldKind::kGuardedMax) {
        Fail("accumulator " + field + " is a " +
             std::string(FoldKindName(kind)) +
             " update, which depends on row order");
      }
    }
    result.order_insensitive = !failed_;
    result.reasons = reasons_;
    if (result.order_insensitive) {
      std::string proof = "every accumulator is a commutative fold:";
      if (folds_.empty()) proof = "the body updates no accumulator";
      for (const auto& [field, kind] : folds_) {
        proof += " " + field + "=" + FoldKindName(kind);
      }
      result.reasons = {proof};
    }
    if (result.order_insensitive) {
      result.decomposable = true;
      for (const auto& [field, kind] : folds_) {
        if (kind == FoldKind::kProduct) {
          result.decomposable = false;
          result.merge_reasons.push_back(
              "accumulator " + field +
              " is a product fold: merging needs division by the entry "
              "baseline, which may be zero");
        }
      }
    }
    return result;
  }

 private:
  /// Records a blocker. Every distinct blocker is kept (in body order), so
  /// one lint pass reports everything that keeps the loop serial.
  void Fail(const std::string& why) {
    failed_ = true;
    for (const auto& r : reasons_) {
      if (r == why) return;
    }
    reasons_.push_back(why);
  }

  /// True if `e` evaluates to the same value for a given row regardless of
  /// which iteration it is: only literals, per-row values, loop-invariant
  /// variables, and pure calls over those.
  bool IsRowPure(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return true;
      case ExprKind::kVarRef: {
        const auto& v = static_cast<const VarRefExpr&>(e);
        if (row_pure_.count(v.name) != 0) return true;
        return assigned_.count(v.name) == 0;  // loop-invariant
      }
      case ExprKind::kUnary:
      case ExprKind::kBinary:
      case ExprKind::kIsNull:
      case ExprKind::kCast:
      case ExprKind::kCaseWhen: {
        for (const Expr* c : e.Children()) {
          if (!IsRowPure(*c)) return false;
        }
        return true;
      }
      case ExprKind::kFunctionCall: {
        const auto& f = static_cast<const FunctionCallExpr&>(e);
        if (!is_pure_call_ || !is_pure_call_(f.name)) return false;
        for (const auto& a : f.args) {
          if (!IsRowPure(*a)) return false;
        }
        return true;
      }
      default:
        return false;  // column refs, subqueries, aggregate calls
    }
  }

  void RecordFold(const std::string& field, FoldKind kind) {
    auto it = folds_.find(field);
    if (it == folds_.end()) {
      folds_.emplace(field, kind);
    } else if (it->second != kind) {
      // Mixed update shapes on one accumulator compose into nothing the
      // algebra recognizes.
      it->second = FoldKind::kOpaque;
    }
  }

  void ClassifyStmt(const Stmt& stmt, bool conditional) {
    switch (stmt.kind) {
      case StmtKind::kBlock:
        for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
          ClassifyStmt(*s, conditional);
        }
        break;
      case StmtKind::kDeclareVar: {
        const auto& d = static_cast<const DeclareVarStmt&>(stmt);
        if (conditional) {
          Fail("local " + d.name + " is declared conditionally");
          break;
        }
        if (d.initializer == nullptr || IsRowPure(*d.initializer)) {
          row_pure_.insert(d.name);  // fresh per-row derived value
        } else {
          Fail("local " + d.name + " is initialized from accumulator state");
        }
        break;
      }
      case StmtKind::kSet:
        ClassifySet(static_cast<const SetStmt&>(stmt), conditional);
        break;
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(stmt);
        if (TryGuardedExtremum(i)) break;
        if (IsRowPure(*i.condition)) {
          // Filtered fold: the guard selects rows, each branch must itself
          // fold commutatively.
          ClassifyStmt(*i.then_branch, /*conditional=*/true);
          if (i.else_branch != nullptr) {
            ClassifyStmt(*i.else_branch, /*conditional=*/true);
          }
          break;
        }
        Fail("guard " + i.condition->ToString() +
             " reads accumulator state outside the min/max pattern");
        break;
      }
      case StmtKind::kBreak:
        Fail("BREAK terminates the fold early, so results depend on order");
        break;
      case StmtKind::kContinue:
        Fail("CONTINUE skips statements control-dependently");
        break;
      default:
        Fail("statement shape is not a recognized fold: " +
             stmt.ToString(0).substr(0, 60));
        break;
    }
  }

  void ClassifySet(const SetStmt& s, bool conditional) {
    if (fields_.count(s.name) == 0) {
      // Scratch local: stays row-pure only if recomputed unconditionally
      // from row-pure inputs (a conditional write would leak the previous
      // iteration's value into this one).
      if (conditional) {
        Fail("local " + s.name + " is assigned conditionally and carries "
             "state across rows");
      } else if (IsRowPure(*s.value)) {
        row_pure_.insert(s.name);
      } else {
        Fail("local " + s.name + " is computed from accumulator state");
      }
      return;
    }
    const Expr& v = *s.value;
    if (v.kind == ExprKind::kBinary) {
      const auto& b = static_cast<const BinaryExpr&>(v);
      auto is_self = [&](const Expr& e) {
        return e.kind == ExprKind::kVarRef &&
               static_cast<const VarRefExpr&>(e).name == s.name;
      };
      if (b.op == BinaryOp::kAdd) {
        if ((is_self(*b.left) && IsRowPure(*b.right)) ||
            (is_self(*b.right) && IsRowPure(*b.left))) {
          RecordFold(s.name, FoldKind::kSum);
          return;
        }
      } else if (b.op == BinaryOp::kSub) {
        // acc - e == acc + (-e): still a sum fold (subtraction of the
        // row term, not of the accumulator).
        if (is_self(*b.left) && IsRowPure(*b.right)) {
          RecordFold(s.name, FoldKind::kSum);
          return;
        }
      } else if (b.op == BinaryOp::kMul) {
        if ((is_self(*b.left) && IsRowPure(*b.right)) ||
            (is_self(*b.right) && IsRowPure(*b.left))) {
          RecordFold(s.name, FoldKind::kProduct);
          return;
        }
      }
    }
    if (IsRowPure(v)) {
      RecordFold(s.name, FoldKind::kLastValue);
      return;
    }
    RecordFold(s.name, FoldKind::kOpaque);
  }

  /// Matches  IF (e < acc) SET acc = e  — with <=, >, >=, operands in either
  /// order, an optional `acc IS NULL OR ...` disjunct, and an optional
  /// single-statement block around the SET. No ELSE branch.
  bool TryGuardedExtremum(const IfStmt& i) {
    if (i.else_branch != nullptr) return false;

    // Unwrap a one-statement block.
    const Stmt* then_stmt = i.then_branch.get();
    if (then_stmt->kind == StmtKind::kBlock) {
      const auto& b = static_cast<const BlockStmt&>(*then_stmt);
      if (b.statements.size() != 1) return false;
      then_stmt = b.statements[0].get();
    }
    if (then_stmt->kind != StmtKind::kSet) return false;
    const auto& set = static_cast<const SetStmt&>(*then_stmt);
    if (fields_.count(set.name) == 0 || !IsRowPure(*set.value)) return false;

    // Peel `acc IS NULL OR ...`.
    const Expr* cond = i.condition.get();
    if (cond->kind == ExprKind::kBinary &&
        static_cast<const BinaryExpr&>(*cond).op == BinaryOp::kOr) {
      const auto& orx = static_cast<const BinaryExpr&>(*cond);
      auto is_null_guard = [&](const Expr& e) {
        if (e.kind != ExprKind::kIsNull) return false;
        const auto& n = static_cast<const IsNullExpr&>(e);
        return !n.negated && n.operand->kind == ExprKind::kVarRef &&
               static_cast<const VarRefExpr&>(*n.operand).name == set.name;
      };
      if (is_null_guard(*orx.left)) {
        cond = orx.right.get();
      } else if (is_null_guard(*orx.right)) {
        cond = orx.left.get();
      } else {
        return false;
      }
    }
    if (cond->kind != ExprKind::kBinary) return false;
    const auto& cmp = static_cast<const BinaryExpr&>(*cond);

    auto is_acc = [&](const Expr& e) {
      return e.kind == ExprKind::kVarRef &&
             static_cast<const VarRefExpr&>(e).name == set.name;
    };
    // Which side is the accumulator, which the candidate row value?
    const Expr* candidate = nullptr;
    bool acc_on_left = false;
    if (is_acc(*cmp.left) && IsRowPure(*cmp.right)) {
      candidate = cmp.right.get();
      acc_on_left = true;
    } else if (is_acc(*cmp.right) && IsRowPure(*cmp.left)) {
      candidate = cmp.left.get();
    } else {
      return false;
    }
    // The guarded value must be the compared value, or ties/order leak in.
    if (candidate->ToString() != set.value->ToString()) return false;

    FoldKind kind;
    switch (cmp.op) {
      case BinaryOp::kLt:
      case BinaryOp::kLe:
        // candidate < acc  -> keep smaller -> min; acc < candidate -> max.
        kind = acc_on_left ? FoldKind::kGuardedMax : FoldKind::kGuardedMin;
        break;
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        kind = acc_on_left ? FoldKind::kGuardedMin : FoldKind::kGuardedMax;
        break;
      default:
        return false;
    }
    RecordFold(set.name, kind);
    return true;
  }

  const std::set<std::string>& fields_;
  std::set<std::string> row_pure_;
  const std::function<bool(const std::string&)>& is_pure_call_;
  std::set<std::string> assigned_;
  std::map<std::string, FoldKind> folds_;
  bool failed_ = false;
  std::vector<std::string> reasons_;
};

}  // namespace

const char* FoldKindName(FoldKind kind) {
  switch (kind) {
    case FoldKind::kSum: return "sum";
    case FoldKind::kProduct: return "product";
    case FoldKind::kGuardedMin: return "guarded-min";
    case FoldKind::kGuardedMax: return "guarded-max";
    case FoldKind::kLastValue: return "last-value";
    case FoldKind::kOpaque: return "opaque";
  }
  return "opaque";
}

BodyClassification ClassifyLoopBody(
    const BlockStmt& body, const std::set<std::string>& fields,
    const std::set<std::string>& row_vars,
    const std::function<bool(const std::string&)>& is_pure_call) {
  Classifier classifier(fields, row_vars, is_pure_call);
  return classifier.Run(body);
}

}  // namespace aggify
