// Early-exit (BREAK) monotonicity analysis (ROADMAP item 4,
// docs/ANALYSIS.md §6).
//
// A cursor loop that BREAKs is already rewritten correctly: the synthesized
// aggregate keeps the IF ... BREAK in its body and latches a `done` flag, so
// Accumulate calls after the exit fires are no-ops. What the rewrite loses
// is the *work bound* — the cursor stopped fetching, the aggregate still
// consumes every row of Q.
//
// This analysis recovers the bound for the canonical counted-exit shape:
//
//   SET @cnt = @cnt + s;        -- s a positive integer literal, the only
//                               -- write to @cnt, unconditional
//   IF @cnt >= K BREAK;         -- K an integer literal; also >, and the
//                               -- mirrored <= / < with @cnt on the right
//
// with no other BREAK, no CONTINUE, and @cnt not a fetch variable. The
// counter then only grows, the exit predicate is monotone in it, and the
// loop consumes at most a prefix of Q of provable length: processing stops
// by iteration ceil((K - cnt0) / s) + 1, where cnt0 is the counter's value
// at loop entry. The rewriter attaches TOP (that bound, evaluated against
// @cnt at statement entry) to the derived cursor query — a pure
// optimization riding on the aggregate's own exit latch, so the bound only
// needs to be an over-approximation (never an under-count):
//
//   TOP (CASE WHEN @cnt IS NULL THEN 9223372036854775807  -- never exits
//             WHEN (K - @cnt) < 1 THEN 2                  -- already past K
//             ELSE (K - @cnt + (s-1)) / s + 2 END)
//
// The +2 slack absorbs both guard placements (test-before-increment needs
// one more row than increment-before-test) and non-integer counter values
// (TOP truncates toward zero, which can lose one more row vs. the exact
// ceiling). Loops that BREAK on anything else stay unbounded and correct
// (AGG406 note).
#pragma once

#include <string>
#include <vector>

#include "parser/expr.h"
#include "parser/statement.h"

namespace aggify {

struct EarlyExitInfo {
  /// The body contains at least one BREAK.
  bool has_break = false;
  /// The exit was proven monotone: a TOP-N prefix bound is sound (AGG403).
  bool bounded = false;
  std::string counter;  ///< "@cnt"
  int64_t limit = 0;    ///< K
  int64_t step = 1;     ///< s
  /// When has_break && !bounded: why the proof refused (AGG406 message).
  std::string reason;
};

/// Analyzes the FETCH-stripped loop body. `fetch_vars` are the FETCH INTO
/// variables (a counter overwritten by FETCH is not monotone).
EarlyExitInfo AnalyzeEarlyExit(const BlockStmt& stripped_body,
                               const std::vector<std::string>& fetch_vars);

/// Builds the TOP bound expression above. Precondition: info.bounded.
ExprPtr BuildPrefixBoundExpr(const EarlyExitInfo& info);

}  // namespace aggify
