#include "analysis/diagnostics.h"

#include <algorithm>
#include <cstdlib>
#include <tuple>

namespace aggify {

namespace {

/// The file component of a lint location ("path/to.sql:fn:cursor" -> the
/// path). Locations without a prefix sort under their whole string.
std::string_view LocFile(const std::string& loc) {
  size_t colon = loc.find(':');
  return colon == std::string::npos
             ? std::string_view(loc)
             : std::string_view(loc.data(), colon);
}

}  // namespace

void SortDiagnosticsBySource(std::vector<Diagnostic>* diags) {
  std::stable_sort(diags->begin(), diags->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::make_tuple(LocFile(a.loc), a.offset,
                                            static_cast<int>(a.code),
                                            std::string_view(a.message)) <
                            std::make_tuple(LocFile(b.loc), b.offset,
                                            static_cast<int>(b.code),
                                            std::string_view(b.message));
                   });
}

std::string DiagCodeName(DiagCode code) {
  return "AGG" + std::to_string(static_cast<int>(code));
}

const char* DiagCodeSlug(DiagCode code) {
  switch (code) {
    case DiagCode::kSelectStarCursor: return "select-star-cursor";
    case DiagCode::kFetchArityMismatch: return "fetch-arity-mismatch";
    case DiagCode::kInconsistentFetchVars: return "inconsistent-fetch-vars";
    case DiagCode::kPersistentInsert: return "persistent-insert";
    case DiagCode::kPersistentUpdate: return "persistent-update";
    case DiagCode::kPersistentDelete: return "persistent-delete";
    case DiagCode::kReturnInLoop: return "return-in-loop";
    case DiagCode::kNonCanonicalFetch: return "non-canonical-fetch";
    case DiagCode::kFetchVarLiveAfterLoop: return "fetch-var-live-after-loop";
    case DiagCode::kLoopLocalObservable: return "loop-local-observable";
    case DiagCode::kImpureUdfCall: return "impure-udf-call";
    case DiagCode::kUnknownFunctionCall: return "unknown-function-call";
    case DiagCode::kScriptError: return "script-error";
    case DiagCode::kRewritten: return "rewritten";
    case DiagCode::kSortElided: return "sort-elided";
    case DiagCode::kMergeSynthesized: return "merge-synthesized";
    case DiagCode::kOrderEnforced: return "order-enforced";
    case DiagCode::kParallelEligible: return "parallel-eligible";
    case DiagCode::kMergeRule: return "merge-rule";
    case DiagCode::kMergeCertified: return "merge-certified";
    case DiagCode::kNonCommutativeUpdate: return "non-commutative-update";
    case DiagCode::kStatefulGuard: return "stateful-guard";
    case DiagCode::kCrossAccumulatorDep: return "cross-accumulator-dep";
    case DiagCode::kUnrecognizedUpdate: return "unrecognized-update";
    case DiagCode::kCertificateFailed: return "certificate-failed";
    case DiagCode::kDeadStore: return "dead-store";
    case DiagCode::kUnusedFetchColumn: return "unused-fetch-column";
    case DiagCode::kConstantFalseBranch: return "constant-false-branch";
    case DiagCode::kLoweredToBuiltin: return "lowered-to-builtin";
    case DiagCode::kLoopInvariantGuard: return "loop-invariant-guard";
    case DiagCode::kStaticTripCount: return "static-trip-count";
    case DiagCode::kDmlInsertRewritten: return "dml-insert-rewritten";
    case DiagCode::kDmlUpdateRewritten: return "dml-update-rewritten";
    case DiagCode::kEarlyExitBounded: return "early-exit-bounded";
    case DiagCode::kSelfReadAfterWrite: return "self-read-after-write";
    case DiagCode::kNonKeyDisjointUpdate: return "non-key-disjoint-update";
    case DiagCode::kNonMonotoneExit: return "non-monotone-exit";
    case DiagCode::kDmlShapeUnsupported: return "dml-shape-unsupported";
  }
  return "unknown";
}

DiagSeverity DiagCodeSeverity(DiagCode code) {
  switch (code) {
    case DiagCode::kImpureUdfCall:
    case DiagCode::kScriptError:
      return DiagSeverity::kError;
    case DiagCode::kRewritten:
    case DiagCode::kSortElided:
    case DiagCode::kMergeSynthesized:
    case DiagCode::kOrderEnforced:
    case DiagCode::kParallelEligible:
    case DiagCode::kMergeRule:
    case DiagCode::kMergeCertified:
    case DiagCode::kNonCommutativeUpdate:
    case DiagCode::kStatefulGuard:
    case DiagCode::kCrossAccumulatorDep:
    case DiagCode::kUnrecognizedUpdate:
    case DiagCode::kCertificateFailed:
    case DiagCode::kLoweredToBuiltin:
    case DiagCode::kLoopInvariantGuard:
    case DiagCode::kStaticTripCount:
    case DiagCode::kDmlInsertRewritten:
    case DiagCode::kDmlUpdateRewritten:
    case DiagCode::kEarlyExitBounded:
    // A non-monotone exit keeps the (correct) unbounded rewrite — the loop
    // is not lost, only the TOP-N prefix bound — so it is a note, like the
    // merge-synthesis blockers. 404/405/407 fall through to warning: the
    // loop stays a cursor loop.
    case DiagCode::kNonMonotoneExit:
      return DiagSeverity::kNote;
    default:
      return DiagSeverity::kWarning;
  }
}

const char* SeverityName(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kError: return "error";
    case DiagSeverity::kWarning: return "warning";
    case DiagSeverity::kNote: return "note";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string where = loc;
  // Clang-tidy-style position: the byte offset stands in for line:col
  // (the dialect keeps offsets, not line tables). 0 = unknown/synthesized.
  if (offset != 0) where += ":" + std::to_string(offset);
  std::string out = where + ": " + SeverityName(severity) + ": " + message +
                    " [aggify-" + DiagCodeSlug(code) + "]";
  if (!fixit.empty()) out += "\n  fix-it: " + fixit;
  return out;
}

Status NotApplicableDiag(DiagCode code, const std::string& message) {
  return Status::NotApplicable("[" + DiagCodeName(code) + "] " + message);
}

Diagnostic MakeDiagnostic(DiagCode code, std::string loc, std::string message,
                          std::string fixit) {
  Diagnostic d;
  d.code = code;
  d.severity = DiagCodeSeverity(code);
  d.loc = std::move(loc);
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  return d;
}

Diagnostic DiagnosticFromStatus(const Status& status, std::string loc,
                                std::string fixit) {
  const std::string& msg = status.message();
  DiagCode code = DiagCode::kScriptError;
  std::string text = msg;
  if (msg.size() > 8 && msg[0] == '[' && msg.compare(1, 3, "AGG") == 0) {
    size_t close = msg.find(']');
    if (close != std::string::npos) {
      int n = std::atoi(msg.substr(4, close - 4).c_str());
      if (n >= 101 && n <= 499) {
        code = static_cast<DiagCode>(n);
        text = msg.substr(close + 1);
        if (!text.empty() && text[0] == ' ') text.erase(0, 1);
      }
    }
  }
  return MakeDiagnostic(code, std::move(loc), std::move(text),
                        std::move(fixit));
}

}  // namespace aggify
