#include "analysis/table_effects.h"

#include <functional>

#include "common/string_util.h"

namespace aggify {

namespace {

bool IsTempName(const std::string& name) {
  return !name.empty() && (name[0] == '@' || name[0] == '#');
}

/// Unwraps `{ s; }` single-statement blocks.
const Stmt* SoleStatement(const Stmt& s) {
  if (s.kind != StmtKind::kBlock) return &s;
  const auto& b = static_cast<const BlockStmt&>(s);
  return b.statements.size() == 1 ? b.statements[0].get() : nullptr;
}

std::string JoinNames(const std::set<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace

void TableEffectSet::Join(const TableEffectSet& other) {
  reads.insert(other.reads.begin(), other.reads.end());
  writes.insert(other.writes.begin(), other.writes.end());
  if (other.opaque && !opaque) {
    opaque = true;
    opaque_evidence = other.opaque_evidence;
  }
}

std::string TableEffectSet::ToString() const {
  std::string out = "reads{" + JoinNames(reads) + "} writes{" +
                    JoinNames(writes) + "}";
  if (opaque) out += " opaque(" + opaque_evidence + ")";
  return out;
}

TableEffectAnalysis TableEffectAnalysis::Build(
    const Catalog* catalog, CallGraph::BuiltinPredicate is_builtin) {
  TableEffectAnalysis analysis;
  analysis.is_builtin_ = std::move(is_builtin);
  if (catalog == nullptr) return analysis;

  // Seed every function with the bottom summary so intra-catalog calls
  // resolve (optimistically empty) from round one, then iterate the
  // transfer function to the least fixpoint. Summaries only grow, the
  // powerset-of-tables lattice is finite, so this terminates — including
  // for mutual recursion.
  std::vector<std::string> names = catalog->FunctionNames();
  for (const auto& name : names) {
    analysis.per_function_[ToLower(name)] = TableEffectSet{};
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& name : names) {
      auto def = catalog->GetFunction(name);
      if (!def.ok() || (*def)->body == nullptr) continue;
      TableEffectSet next = analysis.OfStatement(*(*def)->body);
      TableEffectSet& cur = analysis.per_function_[ToLower(name)];
      if (next.reads != cur.reads || next.writes != cur.writes ||
          next.opaque != cur.opaque) {
        cur = std::move(next);
        changed = true;
      }
    }
  }
  return analysis;
}

TableEffectSet TableEffectAnalysis::OfFunction(const std::string& name) const {
  auto it = per_function_.find(ToLower(name));
  if (it != per_function_.end()) return it->second;
  TableEffectSet out;
  if (is_builtin_ == nullptr || !is_builtin_(name)) {
    out.opaque = true;
    out.opaque_evidence = "calls unknown function " + name;
  }
  return out;
}

void TableEffectAnalysis::AddCallEffects(const std::string& callee,
                                         TableEffectSet* out) const {
  out->Join(OfFunction(callee));
}

TableEffectSet TableEffectAnalysis::OfStatement(const Stmt& stmt) const {
  TableEffectSet out;
  CollectStmt(stmt, &out);
  return out;
}

TableEffectSet TableEffectAnalysis::OfQuery(const SelectStmt& query) const {
  TableEffectSet out;
  CollectQuery(query, &out);
  return out;
}

TableEffectSet TableEffectAnalysis::OfExpr(const Expr& expr) const {
  TableEffectSet out;
  CollectExpr(expr, &out);
  return out;
}

void TableEffectAnalysis::CollectExpr(const Expr& expr,
                                      TableEffectSet* out) const {
  switch (expr.kind) {
    case ExprKind::kScalarSubquery:
      CollectQuery(*static_cast<const ScalarSubqueryExpr&>(expr).query, out);
      return;
    case ExprKind::kExists:
      CollectQuery(*static_cast<const ExistsExpr&>(expr).query, out);
      return;
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      CollectExpr(*in.operand, out);
      for (const auto& e : in.list) CollectExpr(*e, out);
      if (in.subquery != nullptr) CollectQuery(*in.subquery, out);
      return;
    }
    case ExprKind::kFunctionCall: {
      const auto& call = static_cast<const FunctionCallExpr&>(expr);
      AddCallEffects(call.name, out);
      for (const auto& a : call.args) CollectExpr(*a, out);
      return;
    }
    default:
      for (const Expr* c : expr.Children()) CollectExpr(*c, out);
      return;
  }
}

namespace {

/// Collects base-table reads of a query, resolving CTE names lexically
/// (a FROM reference to an in-scope CTE is not a base-table read).
struct QueryWalker {
  const TableEffectAnalysis* analysis;
  TableEffectSet* out;
  std::function<void(const Expr&)> expr_fn;

  void WalkTableRef(const TableRef& ref, const std::set<std::string>& ctes) {
    switch (ref.kind) {
      case TableRef::Kind::kBaseTable: {
        std::string lc = ToLower(ref.table_name);
        if (!IsTempName(ref.table_name) && ctes.count(lc) == 0) {
          out->reads.insert(lc);
        }
        return;
      }
      case TableRef::Kind::kSubquery:
        Walk(*ref.subquery, ctes);
        return;
      case TableRef::Kind::kJoin:
        WalkTableRef(*ref.left, ctes);
        WalkTableRef(*ref.right, ctes);
        if (ref.join_condition != nullptr) expr_fn(*ref.join_condition);
        return;
    }
  }

  void Walk(const SelectStmt& q, std::set<std::string> ctes) {
    for (const auto& cte : q.ctes) {
      // A recursive CTE's body may reference its own name.
      std::set<std::string> inner = ctes;
      inner.insert(ToLower(cte.name));
      Walk(*cte.query, cte.recursive ? inner : ctes);
      ctes.insert(ToLower(cte.name));
    }
    if (q.top_n != nullptr) expr_fn(*q.top_n);
    for (const auto& item : q.items) expr_fn(*item.expr);
    for (const auto& ref : q.from) WalkTableRef(*ref, ctes);
    if (q.where != nullptr) expr_fn(*q.where);
    for (const auto& g : q.group_by) expr_fn(*g);
    if (q.having != nullptr) expr_fn(*q.having);
    for (const auto& o : q.order_by) expr_fn(*o.expr);
    if (q.union_all != nullptr) Walk(*q.union_all, ctes);
  }
};

}  // namespace

void TableEffectAnalysis::CollectQuery(const SelectStmt& query,
                                       TableEffectSet* out) const {
  QueryWalker walker;
  walker.analysis = this;
  walker.out = out;
  walker.expr_fn = [this, out](const Expr& e) { CollectExpr(e, out); };
  walker.Walk(query, {});
}

void TableEffectAnalysis::CollectStmt(const Stmt& stmt,
                                      TableEffectSet* out) const {
  switch (stmt.kind) {
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
        CollectStmt(*s, out);
      }
      return;
    case StmtKind::kDeclareVar: {
      const auto& s = static_cast<const DeclareVarStmt&>(stmt);
      if (s.initializer != nullptr) CollectExpr(*s.initializer, out);
      return;
    }
    case StmtKind::kSet:
      CollectExpr(*static_cast<const SetStmt&>(stmt).value, out);
      return;
    case StmtKind::kIf: {
      const auto& s = static_cast<const IfStmt&>(stmt);
      CollectExpr(*s.condition, out);
      CollectStmt(*s.then_branch, out);
      if (s.else_branch != nullptr) CollectStmt(*s.else_branch, out);
      return;
    }
    case StmtKind::kWhile: {
      const auto& s = static_cast<const WhileStmt&>(stmt);
      CollectExpr(*s.condition, out);
      CollectStmt(*s.body, out);
      return;
    }
    case StmtKind::kFor: {
      const auto& s = static_cast<const ForStmt&>(stmt);
      CollectExpr(*s.init, out);
      CollectExpr(*s.bound, out);
      if (s.step != nullptr) CollectExpr(*s.step, out);
      CollectStmt(*s.body, out);
      return;
    }
    case StmtKind::kDeclareCursor:
      CollectQuery(*static_cast<const DeclareCursorStmt&>(stmt).query, out);
      return;
    case StmtKind::kReturn: {
      const auto& s = static_cast<const ReturnStmt&>(stmt);
      if (s.value != nullptr) CollectExpr(*s.value, out);
      return;
    }
    case StmtKind::kInsert: {
      const auto& s = static_cast<const InsertStmt&>(stmt);
      if (!IsTempName(s.table)) out->writes.insert(ToLower(s.table));
      for (const auto& row : s.values_rows) {
        for (const auto& e : row) CollectExpr(*e, out);
      }
      if (s.select != nullptr) CollectQuery(*s.select, out);
      return;
    }
    case StmtKind::kUpdate: {
      const auto& s = static_cast<const UpdateStmt&>(stmt);
      if (!IsTempName(s.table)) out->writes.insert(ToLower(s.table));
      for (const auto& a : s.assignments) CollectExpr(*a.second, out);
      if (s.where != nullptr) CollectExpr(*s.where, out);
      return;
    }
    case StmtKind::kDelete: {
      const auto& s = static_cast<const DeleteStmt&>(stmt);
      if (!IsTempName(s.table)) out->writes.insert(ToLower(s.table));
      if (s.where != nullptr) CollectExpr(*s.where, out);
      return;
    }
    case StmtKind::kTryCatch: {
      const auto& s = static_cast<const TryCatchStmt&>(stmt);
      CollectStmt(*s.try_block, out);
      CollectStmt(*s.catch_block, out);
      return;
    }
    case StmtKind::kExecQuery:
      CollectQuery(*static_cast<const ExecQueryStmt&>(stmt).query, out);
      return;
    case StmtKind::kMultiAssign:
      CollectQuery(*static_cast<const MultiAssignStmt&>(stmt).query, out);
      return;
    case StmtKind::kGuardedRewrite: {
      const auto& g = static_cast<const GuardedRewriteStmt&>(stmt);
      if (g.rewritten_dml != nullptr) {
        CollectStmt(*g.rewritten_dml, out);
      } else {
        CollectQuery(*g.rewritten->query, out);
      }
      return;
    }
    default:
      return;  // cursor control flow, BREAK/CONTINUE: no table effects
  }
}

// ---------------------------------------------------------------------------
// DML-body classification (rewrite families a / b).
// ---------------------------------------------------------------------------

namespace {

/// Structural row-purity: the expression must evaluate identically whether
/// run per-iteration by the interpreter or per-row inside the rewritten
/// SELECT. Variables are fine (fetch vars map to cursor columns; everything
/// else is loop-invariant in a single-DML body) except the per-iteration
/// @@fetch_status. Column refs, subqueries, and aggregate calls are out —
/// columns have no binding in the procedural body, and subqueries would
/// re-read tables per row. Function calls pass structurally; their table
/// effects are vetted separately by the caller.
bool RowPure(const Expr& e, bool allow_column_refs, std::string* why) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
      if (!allow_column_refs) {
        *why = "references column " +
               static_cast<const ColumnRefExpr&>(e).name;
        return false;
      }
      return true;
    case ExprKind::kVarRef: {
      const auto& v = static_cast<const VarRefExpr&>(e);
      if (v.name.rfind("@@", 0) == 0) {
        *why = "references per-iteration state " + v.name;
        return false;
      }
      return true;
    }
    case ExprKind::kScalarSubquery:
    case ExprKind::kExists:
      *why = "contains a subquery";
      return false;
    case ExprKind::kAggregateCall:
      *why = "contains an aggregate call";
      return false;
    case ExprKind::kInList:
      if (static_cast<const InListExpr&>(e).subquery != nullptr) {
        *why = "contains a subquery";
        return false;
      }
      break;
    default:
      break;
  }
  for (const Expr* c : e.Children()) {
    if (!RowPure(*c, allow_column_refs, why)) return false;
  }
  return true;
}

Status Refuse(DiagCode code, const std::string& message) {
  return NotApplicableDiag(code, message);
}

bool IsDerivedAliasName(const std::string& name) {
  if (name.size() < 2 || (name[0] != 'c' && name[0] != 'C')) return false;
  for (size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  return true;
}

}  // namespace

Result<DmlBodyPlan> ClassifyDmlBody(const BlockStmt& body,
                                    const SelectStmt& cursor_query,
                                    const std::vector<std::string>& fetch_vars,
                                    const TableEffectAnalysis& fx,
                                    const Catalog* catalog) {
  // --- Shape: exactly one [guarded] DML statement. ---
  if (body.statements.size() != 1) {
    return Refuse(DiagCode::kDmlShapeUnsupported,
                  "DML body has " + std::to_string(body.statements.size()) +
                      " statements; the rewrite families cover a single "
                      "(optionally IF-guarded) INSERT or UPDATE");
  }
  const Stmt* s = SoleStatement(*body.statements[0]);
  if (s == nullptr) {
    return Refuse(DiagCode::kDmlShapeUnsupported,
                  "DML body is a multi-statement block");
  }
  DmlBodyPlan plan;
  std::string why;
  if (s->kind == StmtKind::kIf) {
    const auto& iff = static_cast<const IfStmt&>(*s);
    if (iff.else_branch != nullptr) {
      return Refuse(DiagCode::kDmlShapeUnsupported,
                    "guarded DML has an ELSE branch");
    }
    if (!RowPure(*iff.condition, /*allow_column_refs=*/false, &why)) {
      return Refuse(DiagCode::kDmlShapeUnsupported,
                    "DML guard is not row-pure: " + why);
    }
    plan.guard = &iff;
    s = SoleStatement(*iff.then_branch);
    if (s == nullptr) {
      return Refuse(DiagCode::kDmlShapeUnsupported,
                    "guarded branch is a multi-statement block");
    }
  }

  // Effects of every expression the body evaluates per row (guard + DML
  // arguments), accumulated for the disjointness certificate.
  TableEffectSet row_effects;
  if (plan.guard != nullptr) row_effects.Join(fx.OfExpr(*plan.guard->condition));

  if (s->kind == StmtKind::kInsert) {
    // --- Family a: append-only single-row INSERT ... VALUES. ---
    const auto& ins = static_cast<const InsertStmt&>(*s);
    if (ins.select != nullptr || ins.values_rows.size() != 1) {
      return Refuse(DiagCode::kDmlShapeUnsupported,
                    "INSERT body is not a single-row VALUES insert");
    }
    for (const auto& e : ins.values_rows[0]) {
      if (!RowPure(*e, /*allow_column_refs=*/false, &why)) {
        return Refuse(DiagCode::kDmlShapeUnsupported,
                      "INSERT value is not row-pure: " + why);
      }
      row_effects.Join(fx.OfExpr(*e));
    }
    plan.family = DmlFamily::kAppendInsert;
    plan.insert = &ins;
    plan.table = ins.table;
  } else if (s->kind == StmtKind::kUpdate) {
    // --- Family b: key-equality accumulating UPDATE. ---
    const auto& upd = static_cast<const UpdateStmt&>(*s);
    if (upd.assignments.size() != 1) {
      return Refuse(DiagCode::kNonKeyDisjointUpdate,
                    "UPDATE sets " + std::to_string(upd.assignments.size()) +
                        " columns; the accumulating family covers exactly "
                        "one `col = col +/- e` assignment");
    }
    const std::string& col = upd.assignments[0].first;
    const Expr* rhs = upd.assignments[0].second.get();
    if (rhs->kind != ExprKind::kBinary) {
      return Refuse(DiagCode::kNonKeyDisjointUpdate,
                    "UPDATE assignment to " + col +
                        " is not an accumulating `col = col +/- e` fold");
    }
    const auto& bin = static_cast<const BinaryExpr&>(*rhs);
    auto is_col_ref = [&](const Expr& e) {
      return e.kind == ExprKind::kColumnRef &&
             EqualsIgnoreCase(static_cast<const ColumnRefExpr&>(e).name, col);
    };
    const Expr* delta = nullptr;
    bool subtract = false;
    if (bin.op == BinaryOp::kAdd && is_col_ref(*bin.left)) {
      delta = bin.right.get();
    } else if (bin.op == BinaryOp::kAdd && is_col_ref(*bin.right)) {
      delta = bin.left.get();
    } else if (bin.op == BinaryOp::kSub && is_col_ref(*bin.left)) {
      delta = bin.right.get();
      subtract = true;
    }
    if (delta == nullptr) {
      return Refuse(DiagCode::kNonKeyDisjointUpdate,
                    "UPDATE assignment to " + col +
                        " is not an accumulating `col = col +/- e` fold");
    }
    if (!RowPure(*delta, /*allow_column_refs=*/false, &why)) {
      return Refuse(DiagCode::kNonKeyDisjointUpdate,
                    "UPDATE delta expression is not row-pure: " + why);
    }
    if (upd.where == nullptr || upd.where->kind != ExprKind::kBinary) {
      return Refuse(DiagCode::kNonKeyDisjointUpdate,
                    "UPDATE WHERE is not a single key-column equality");
    }
    const auto& where = static_cast<const BinaryExpr&>(*upd.where);
    const Expr* key_side = nullptr;
    const Expr* key_expr = nullptr;
    if (where.op == BinaryOp::kEq) {
      if (where.left->kind == ExprKind::kColumnRef) {
        key_side = where.left.get();
        key_expr = where.right.get();
      } else if (where.right->kind == ExprKind::kColumnRef) {
        key_side = where.right.get();
        key_expr = where.left.get();
      }
    }
    if (key_side == nullptr) {
      return Refuse(DiagCode::kNonKeyDisjointUpdate,
                    "UPDATE WHERE is not a single key-column equality");
    }
    const std::string& keycol =
        static_cast<const ColumnRefExpr&>(*key_side).name;
    if (EqualsIgnoreCase(keycol, col)) {
      return Refuse(DiagCode::kNonKeyDisjointUpdate,
                    "UPDATE keys on the accumulated column " + col +
                        " itself: iterations are not key-disjoint from the "
                        "accumulation");
    }
    if (!RowPure(*key_expr, /*allow_column_refs=*/false, &why)) {
      return Refuse(DiagCode::kNonKeyDisjointUpdate,
                    "UPDATE key expression is not row-pure: " + why);
    }
    if (IsDerivedAliasName(col) || IsDerivedAliasName(keycol)) {
      return Refuse(DiagCode::kNonKeyDisjointUpdate,
                    "target column name collides with the rewrite's derived-"
                    "table aliases (c0, c1, ...)");
    }
    // Bit-identity restriction: the grouped rewrite regroups the additions
    // (per-key subtotal added once vs. per-row sequential adds). Exact for
    // 64-bit integers, not for binary doubles — so the accumulated column
    // must be integer-typed, which needs the schema.
    if (catalog == nullptr || !catalog->HasTable(upd.table)) {
      return Refuse(DiagCode::kNonKeyDisjointUpdate,
                    "table " + upd.table +
                        " is not in the catalog; cannot verify the "
                        "accumulator column type");
    }
    const Table* table = *catalog->GetTable(upd.table);
    auto col_idx = table->schema().IndexOf(col);
    auto key_idx = table->schema().IndexOf(keycol);
    if (!col_idx.ok() || !key_idx.ok()) {
      return Refuse(DiagCode::kNonKeyDisjointUpdate,
                    "UPDATE references a column absent from " + upd.table);
    }
    if (table->schema().column(*col_idx).type.id != TypeId::kInt) {
      return Refuse(DiagCode::kNonKeyDisjointUpdate,
                    "accumulated column " + col +
                        " is not integer-typed; regrouped floating-point "
                        "addition is not bit-identical to the loop");
    }
    row_effects.Join(fx.OfExpr(*delta));
    row_effects.Join(fx.OfExpr(*key_expr));
    plan.family = DmlFamily::kAccumUpdate;
    plan.update = &upd;
    plan.table = upd.table;
    plan.accum_column = col;
    plan.key_column = keycol;
    plan.key_expr = key_expr;
    plan.delta_expr = delta;
    plan.subtract = subtract;
  } else {
    return Refuse(DiagCode::kDmlShapeUnsupported,
                  "DML body statement is not an INSERT or UPDATE");
  }

  // Fetch-variable sanity: FETCH must not target @@-vars (never does) and
  // the DML must not reference variables assigned elsewhere in the body —
  // guaranteed structurally by the single-statement shape.
  (void)fetch_vars;

  // --- Effects: called functions must not write, and everything read must
  // be disjoint from the written table (Halloween certificate). ---
  const std::string target = ToLower(plan.table);
  TableEffectSet query_effects = fx.OfQuery(cursor_query);
  if (row_effects.opaque || query_effects.opaque) {
    return Refuse(DiagCode::kSelfReadAfterWrite,
                  "read/write disjointness is unprovable: " +
                      (row_effects.opaque ? row_effects.opaque_evidence
                                          : query_effects.opaque_evidence));
  }
  if (!row_effects.writes.empty()) {
    std::set<std::string> overlap = row_effects.writes;
    overlap.insert(target);
    bool self = row_effects.writes.count(target) != 0 ||
                query_effects.Reads(target);
    for (const auto& w : row_effects.writes) {
      if (query_effects.Reads(w) || row_effects.reads.count(w) != 0) {
        self = true;
      }
    }
    if (self) {
      return Refuse(DiagCode::kSelfReadAfterWrite,
                    "a called function writes " +
                        JoinNames(row_effects.writes) +
                        ", which the loop also reads or writes");
    }
    return Refuse(DiagCode::kDmlShapeUnsupported,
                  "a called function writes table(s) " +
                      JoinNames(row_effects.writes) +
                      "; the body's write set is not a single append/"
                      "accumulate target");
  }
  if (query_effects.Reads(target) || row_effects.reads.count(target) != 0) {
    return Refuse(
        DiagCode::kSelfReadAfterWrite,
        "loop writes " + plan.table +
            ", which the cursor query or the body also reads; the "
            "set-oriented rewrite would observe its own writes");
  }
  return plan;
}

}  // namespace aggify
