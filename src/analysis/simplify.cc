#include "analysis/simplify.h"

#include <functional>

#include "analysis/absint.h"
#include "analysis/cfg.h"
#include "analysis/dataflow.h"

namespace aggify {

namespace {

// ---------------------------------------------------------------------------
// Pass 1: constant propagation / folding.
// ---------------------------------------------------------------------------

/// Replaces `*slot` with a literal when the abstract value is a proven
/// constant (by the domain's invariant, a Const result means the concrete
/// evaluation succeeds and yields exactly that value). Recurses into
/// children first so partially-constant trees shrink bottom-up.
void FoldExprTree(ExprPtr* slot, const AbsEnv& env, int* folded) {
  Expr* e = slot->get();
  switch (e->kind) {
    case ExprKind::kUnary:
      FoldExprTree(&static_cast<UnaryExpr*>(e)->operand, env, folded);
      break;
    case ExprKind::kBinary: {
      auto* b = static_cast<BinaryExpr*>(e);
      FoldExprTree(&b->left, env, folded);
      FoldExprTree(&b->right, env, folded);
      break;
    }
    case ExprKind::kIsNull:
      FoldExprTree(&static_cast<IsNullExpr*>(e)->operand, env, folded);
      break;
    case ExprKind::kCast:
      FoldExprTree(&static_cast<CastExpr*>(e)->operand, env, folded);
      break;
    case ExprKind::kFunctionCall:
      for (auto& a : static_cast<FunctionCallExpr*>(e)->args) {
        FoldExprTree(&a, env, folded);
      }
      break;
    case ExprKind::kCaseWhen: {
      auto* cw = static_cast<CaseWhenExpr*>(e);
      for (auto& arm : cw->arms) {
        FoldExprTree(&arm.condition, env, folded);
        FoldExprTree(&arm.result, env, folded);
      }
      if (cw->else_result != nullptr) {
        FoldExprTree(&cw->else_result, env, folded);
      }
      break;
    }
    case ExprKind::kInList:
      // List elements fold; the subquery form (and subqueries in general)
      // belongs to the relational layer and is left untouched.
      FoldExprTree(&static_cast<InListExpr*>(e)->operand, env, folded);
      for (auto& item : static_cast<InListExpr*>(e)->list) {
        FoldExprTree(&item, env, folded);
      }
      break;
    default:
      break;  // literals, var refs, subqueries, aggregates: no children here
  }
  e = slot->get();
  if (e->kind == ExprKind::kLiteral) return;
  AbsValue v = EvalAbstract(*e, env);
  if (v.IsConst()) {
    *slot = MakeLiteral(v.constant);
    ++*folded;
  }
}

bool IsCursorLoop(const WhileStmt& w) {
  // The canonical @@fetch_status loop condition: conservatively treat any
  // condition reading a @@ pseudo-variable as cursor-driven.
  std::vector<std::string> vars;
  CollectVariableRefs(*w.condition, &vars);
  for (const auto& v : vars) {
    if (v.rfind("@@", 0) == 0) return true;
  }
  return false;
}

/// Walks every simple statement (and control-statement header expressions)
/// of the tree, skipping GuardedRewriteStmt wholesale. `in_try` tracks
/// TRY/CATCH nesting for the dead-store pass.
struct SimplifyContext {
  const Cfg* cfg = nullptr;
  const AbstractInterpretation* ai = nullptr;
  SimplifyStats* stats = nullptr;
  const SimplifyOptions* options = nullptr;
  std::string loc;
};

const AbsEnv& EnvAt(const SimplifyContext& ctx, const Stmt& stmt) {
  static const AbsEnv kEmpty;
  auto node = ctx.cfg->NodeFor(stmt);
  if (!node.ok()) return kEmpty;  // empty env = all-top: folding still
                                  // handles closed (variable-free) trees
  return ctx.ai->In(node.ValueOrDie());
}

void FoldStatements(BlockStmt* block, const SimplifyContext& ctx) {
  for (auto& stmt : block->statements) {
    switch (stmt->kind) {
      case StmtKind::kBlock:
        FoldStatements(static_cast<BlockStmt*>(stmt.get()), ctx);
        break;
      case StmtKind::kDeclareVar: {
        auto* d = static_cast<DeclareVarStmt*>(stmt.get());
        if (d->initializer != nullptr) {
          FoldExprTree(&d->initializer, EnvAt(ctx, *stmt),
                       &ctx.stats->constants_folded);
        }
        break;
      }
      case StmtKind::kSet:
        FoldExprTree(&static_cast<SetStmt*>(stmt.get())->value,
                     EnvAt(ctx, *stmt), &ctx.stats->constants_folded);
        break;
      case StmtKind::kReturn: {
        auto* r = static_cast<ReturnStmt*>(stmt.get());
        if (r->value != nullptr) {
          FoldExprTree(&r->value, EnvAt(ctx, *stmt),
                       &ctx.stats->constants_folded);
        }
        break;
      }
      case StmtKind::kIf: {
        auto* i = static_cast<IfStmt*>(stmt.get());
        FoldExprTree(&i->condition, EnvAt(ctx, *stmt),
                     &ctx.stats->constants_folded);
        if (i->then_branch->kind == StmtKind::kBlock) {
          FoldStatements(static_cast<BlockStmt*>(i->then_branch.get()), ctx);
        }
        if (i->else_branch != nullptr &&
            i->else_branch->kind == StmtKind::kBlock) {
          FoldStatements(static_cast<BlockStmt*>(i->else_branch.get()), ctx);
        }
        break;
      }
      case StmtKind::kWhile: {
        auto* w = static_cast<WhileStmt*>(stmt.get());
        FoldExprTree(&w->condition, EnvAt(ctx, *stmt),
                     &ctx.stats->constants_folded);
        if (w->body->kind == StmtKind::kBlock) {
          FoldStatements(static_cast<BlockStmt*>(w->body.get()), ctx);
        }
        break;
      }
      case StmtKind::kFor: {
        auto* f = static_cast<ForStmt*>(stmt.get());
        FoldExprTree(&f->init, EnvAt(ctx, *stmt),
                     &ctx.stats->constants_folded);
        // Bound and step are re-evaluated every iteration under the loop's
        // own effects; only closed (variable-free) trees fold, which the
        // all-top empty environment expresses.
        static const AbsEnv kClosed;
        FoldExprTree(&f->bound, kClosed, &ctx.stats->constants_folded);
        if (f->step != nullptr) {
          FoldExprTree(&f->step, kClosed, &ctx.stats->constants_folded);
        }
        if (f->body->kind == StmtKind::kBlock) {
          FoldStatements(static_cast<BlockStmt*>(f->body.get()), ctx);
        }
        break;
      }
      case StmtKind::kTryCatch: {
        auto* tc = static_cast<TryCatchStmt*>(stmt.get());
        FoldStatements(static_cast<BlockStmt*>(tc->try_block.get()), ctx);
        FoldStatements(static_cast<BlockStmt*>(tc->catch_block.get()), ctx);
        break;
      }
      default:
        break;  // queries, DML, cursor ops, GuardedRewrite: untouched
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 2: constant-branch pruning.
// ---------------------------------------------------------------------------

void PruneBranches(BlockStmt* block, const SimplifyContext& ctx) {
  auto& stmts = block->statements;
  for (size_t i = 0; i < stmts.size(); /* advanced below */) {
    Stmt* s = stmts[i].get();
    switch (s->kind) {
      case StmtKind::kBlock:
        PruneBranches(static_cast<BlockStmt*>(s), ctx);
        break;
      case StmtKind::kIf: {
        auto* ifs = static_cast<IfStmt*>(s);
        AbsTruth t = AbstractTruth(*ifs->condition, EnvAt(ctx, *s));
        if (t == AbsTruth::kFalse) {
          ctx.stats->diagnostics.push_back(MakeDiagnostic(
              DiagCode::kConstantFalseBranch, ctx.loc,
              "IF condition '" + ifs->condition->ToString() +
                  "' is constant false; then-branch is unreachable"));
          ++ctx.stats->branches_pruned;
          if (ifs->else_branch != nullptr) {
            stmts[i] = std::move(ifs->else_branch);
            continue;  // re-visit the hoisted branch at the same index
          }
          stmts.erase(stmts.begin() + static_cast<std::ptrdiff_t>(i));
          continue;
        }
        if (t == AbsTruth::kTrue) {
          if (ifs->else_branch != nullptr) {
            ctx.stats->diagnostics.push_back(MakeDiagnostic(
                DiagCode::kConstantFalseBranch, ctx.loc,
                "IF condition '" + ifs->condition->ToString() +
                    "' is constant true; else-branch is unreachable"));
          }
          ++ctx.stats->branches_pruned;
          stmts[i] = std::move(ifs->then_branch);
          continue;
        }
        if (ifs->then_branch->kind == StmtKind::kBlock) {
          PruneBranches(static_cast<BlockStmt*>(ifs->then_branch.get()), ctx);
        }
        if (ifs->else_branch != nullptr &&
            ifs->else_branch->kind == StmtKind::kBlock) {
          PruneBranches(static_cast<BlockStmt*>(ifs->else_branch.get()), ctx);
        }
        break;
      }
      case StmtKind::kWhile: {
        auto* w = static_cast<WhileStmt*>(s);
        if (!IsCursorLoop(*w) &&
            AbstractTruth(*w->condition, EnvAt(ctx, *s)) == AbsTruth::kFalse) {
          ctx.stats->diagnostics.push_back(MakeDiagnostic(
              DiagCode::kConstantFalseBranch, ctx.loc,
              "WHILE condition '" + w->condition->ToString() +
                  "' is constant false; loop never runs"));
          ++ctx.stats->branches_pruned;
          stmts.erase(stmts.begin() + static_cast<std::ptrdiff_t>(i));
          continue;
        }
        if (w->body->kind == StmtKind::kBlock) {
          PruneBranches(static_cast<BlockStmt*>(w->body.get()), ctx);
        }
        break;
      }
      case StmtKind::kFor:
        if (static_cast<ForStmt*>(s)->body->kind == StmtKind::kBlock) {
          PruneBranches(
              static_cast<BlockStmt*>(static_cast<ForStmt*>(s)->body.get()),
              ctx);
        }
        break;
      case StmtKind::kTryCatch: {
        auto* tc = static_cast<TryCatchStmt*>(s);
        PruneBranches(static_cast<BlockStmt*>(tc->try_block.get()), ctx);
        PruneBranches(static_cast<BlockStmt*>(tc->catch_block.get()), ctx);
        break;
      }
      default:
        break;
    }
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Pass 3: dead-store elimination.
// ---------------------------------------------------------------------------

/// Whether removing an evaluation of `e` can change observable behavior on
/// *type-correct* executions. Divide/modulo/cast/concat, calls and
/// subqueries have value-dependent errors and are never removed; the
/// arithmetic/logic allowlist can only fail on type mismatches, which are
/// value-independent.
bool RemovableExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kVarRef:
      return true;
    case ExprKind::kUnary:
      return RemovableExpr(*static_cast<const UnaryExpr&>(e).operand);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      switch (b.op) {
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
        case BinaryOp::kConcat:
          return false;
        default:
          return RemovableExpr(*b.left) && RemovableExpr(*b.right);
      }
    }
    case ExprKind::kIsNull:
      return RemovableExpr(*static_cast<const IsNullExpr&>(e).operand);
    case ExprKind::kCaseWhen: {
      const auto& cw = static_cast<const CaseWhenExpr&>(e);
      for (const auto& arm : cw.arms) {
        if (!RemovableExpr(*arm.condition) || !RemovableExpr(*arm.result)) {
          return false;
        }
      }
      return cw.else_result == nullptr || RemovableExpr(*cw.else_result);
    }
    default:
      return false;
  }
}

void CollectDeclaredNames(const Stmt& stmt, std::set<std::string>* declared) {
  switch (stmt.kind) {
    case StmtKind::kDeclareVar:
      declared->insert(static_cast<const DeclareVarStmt&>(stmt).name);
      break;
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
        CollectDeclaredNames(*s, declared);
      }
      break;
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      CollectDeclaredNames(*i.then_branch, declared);
      if (i.else_branch != nullptr) {
        CollectDeclaredNames(*i.else_branch, declared);
      }
      break;
    }
    case StmtKind::kWhile:
      CollectDeclaredNames(*static_cast<const WhileStmt&>(stmt).body,
                           declared);
      break;
    case StmtKind::kFor:
      declared->insert(static_cast<const ForStmt&>(stmt).var);
      CollectDeclaredNames(*static_cast<const ForStmt&>(stmt).body, declared);
      break;
    case StmtKind::kTryCatch: {
      const auto& tc = static_cast<const TryCatchStmt&>(stmt);
      CollectDeclaredNames(*tc.try_block, declared);
      CollectDeclaredNames(*tc.catch_block, declared);
      break;
    }
    default:
      break;
  }
}

struct DeadStoreContext {
  const Cfg* cfg = nullptr;
  const DataflowResult* liveness = nullptr;
  const std::set<std::string>* observable = nullptr;  // may be null
  const std::set<std::string>* declared = nullptr;
  SimplifyStats* stats = nullptr;
  std::string loc;
};

bool NamesDeclared(const Expr& e, const std::set<std::string>& declared) {
  std::vector<std::string> vars;
  CollectVariableRefs(e, &vars);
  for (const auto& v : vars) {
    if (v.rfind("@@", 0) == 0) continue;
    if (declared.count(v) == 0) return false;
  }
  return true;
}

void EliminateDeadStores(BlockStmt* block, const DeadStoreContext& ctx) {
  auto& stmts = block->statements;
  for (size_t i = 0; i < stmts.size(); /* advanced below */) {
    Stmt* s = stmts[i].get();
    switch (s->kind) {
      case StmtKind::kSet: {
        const auto& set = static_cast<const SetStmt&>(*s);
        auto node = ctx.cfg->NodeFor(*s);
        bool live = true;
        if (node.ok()) {
          live = ctx.liveness->LiveOut(node.ValueOrDie()).count(set.name) > 0;
        }
        bool observable = ctx.observable != nullptr &&
                          ctx.observable->count(set.name) > 0;
        if (!live && !observable && set.name.rfind("@@", 0) != 0 &&
            RemovableExpr(*set.value) &&
            ctx.declared->count(set.name) > 0 &&
            NamesDeclared(*set.value, *ctx.declared)) {
          ctx.stats->diagnostics.push_back(MakeDiagnostic(
              DiagCode::kDeadStore, ctx.loc,
              "value of 'SET " + set.name + " = " + set.value->ToString() +
                  "' is never read; store removed"));
          ++ctx.stats->dead_stores_removed;
          stmts.erase(stmts.begin() + static_cast<std::ptrdiff_t>(i));
          continue;
        }
        break;
      }
      case StmtKind::kBlock:
        EliminateDeadStores(static_cast<BlockStmt*>(s), ctx);
        break;
      case StmtKind::kIf: {
        auto* i2 = static_cast<IfStmt*>(s);
        if (i2->then_branch->kind == StmtKind::kBlock) {
          EliminateDeadStores(static_cast<BlockStmt*>(i2->then_branch.get()),
                              ctx);
        }
        if (i2->else_branch != nullptr &&
            i2->else_branch->kind == StmtKind::kBlock) {
          EliminateDeadStores(static_cast<BlockStmt*>(i2->else_branch.get()),
                              ctx);
        }
        break;
      }
      case StmtKind::kWhile:
        if (static_cast<WhileStmt*>(s)->body->kind == StmtKind::kBlock) {
          EliminateDeadStores(
              static_cast<BlockStmt*>(static_cast<WhileStmt*>(s)->body.get()),
              ctx);
        }
        break;
      case StmtKind::kFor:
        if (static_cast<ForStmt*>(s)->body->kind == StmtKind::kBlock) {
          EliminateDeadStores(
              static_cast<BlockStmt*>(static_cast<ForStmt*>(s)->body.get()),
              ctx);
        }
        break;
      // TRY/CATCH intentionally not descended: a store that errors inside
      // TRY diverts control to CATCH, so even "dead" stores are observable.
      default:
        break;
    }
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Reporting pass: loop-invariant guards (AGG305, advisory only).
// ---------------------------------------------------------------------------

void CollectAssignedNames(const Stmt& stmt, std::set<std::string>* assigned) {
  std::vector<std::string> defs;
  StatementDefs(stmt, &defs);
  assigned->insert(defs.begin(), defs.end());
  switch (stmt.kind) {
    case StmtKind::kBlock:
      for (const auto& s : static_cast<const BlockStmt&>(stmt).statements) {
        CollectAssignedNames(*s, assigned);
      }
      break;
    case StmtKind::kIf: {
      const auto& i = static_cast<const IfStmt&>(stmt);
      CollectAssignedNames(*i.then_branch, assigned);
      if (i.else_branch != nullptr) {
        CollectAssignedNames(*i.else_branch, assigned);
      }
      break;
    }
    case StmtKind::kWhile:
      CollectAssignedNames(*static_cast<const WhileStmt&>(stmt).body,
                           assigned);
      break;
    case StmtKind::kFor:
      assigned->insert(static_cast<const ForStmt&>(stmt).var);
      CollectAssignedNames(*static_cast<const ForStmt&>(stmt).body, assigned);
      break;
    case StmtKind::kTryCatch: {
      const auto& tc = static_cast<const TryCatchStmt&>(stmt);
      CollectAssignedNames(*tc.try_block, assigned);
      CollectAssignedNames(*tc.catch_block, assigned);
      break;
    }
    default:
      break;
  }
}

bool ExprHasOpaqueNode(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kFunctionCall:
    case ExprKind::kAggregateCall:
    case ExprKind::kScalarSubquery:
    case ExprKind::kExists:
    case ExprKind::kInList:
      return true;
    default:
      for (const Expr* c : e.Children()) {
        if (c != nullptr && ExprHasOpaqueNode(*c)) return true;
      }
      return false;
  }
}

void NoteInvariantGuards(const BlockStmt& block, SimplifyStats* stats,
                         const std::string& loc) {
  for (const auto& stmt : block.statements) {
    switch (stmt->kind) {
      case StmtKind::kBlock:
        NoteInvariantGuards(static_cast<const BlockStmt&>(*stmt), stats, loc);
        break;
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(*stmt);
        if (i.then_branch->kind == StmtKind::kBlock) {
          NoteInvariantGuards(static_cast<const BlockStmt&>(*i.then_branch),
                              stats, loc);
        }
        if (i.else_branch != nullptr &&
            i.else_branch->kind == StmtKind::kBlock) {
          NoteInvariantGuards(static_cast<const BlockStmt&>(*i.else_branch),
                              stats, loc);
        }
        break;
      }
      case StmtKind::kFor:
      case StmtKind::kWhile: {
        const Stmt* body = stmt->kind == StmtKind::kWhile
                               ? static_cast<const WhileStmt&>(*stmt).body.get()
                               : static_cast<const ForStmt&>(*stmt).body.get();
        std::set<std::string> assigned;
        CollectAssignedNames(*stmt, &assigned);
        if (body->kind != StmtKind::kBlock) break;
        const auto& bb = static_cast<const BlockStmt&>(*body);
        for (const auto& inner : bb.statements) {
          if (inner->kind != StmtKind::kIf) continue;
          const auto& guard = static_cast<const IfStmt&>(*inner);
          if (ExprHasOpaqueNode(*guard.condition)) continue;
          std::vector<std::string> vars;
          CollectVariableRefs(*guard.condition, &vars);
          bool invariant = !vars.empty();
          for (const auto& v : vars) {
            if (assigned.count(v) > 0 || v.rfind("@@", 0) == 0) {
              invariant = false;
              break;
            }
          }
          if (invariant) {
            ++stats->invariant_guards;
            stats->diagnostics.push_back(MakeDiagnostic(
                DiagCode::kLoopInvariantGuard, loc,
                "guard '" + guard.condition->ToString() +
                    "' reads only loop-invariant state; it decides once for "
                    "the whole loop"));
          }
        }
        NoteInvariantGuards(bb, stats, loc);
        break;
      }
      case StmtKind::kTryCatch: {
        const auto& tc = static_cast<const TryCatchStmt&>(*stmt);
        NoteInvariantGuards(static_cast<const BlockStmt&>(*tc.try_block),
                            stats, loc);
        NoteInvariantGuards(static_cast<const BlockStmt&>(*tc.catch_block),
                            stats, loc);
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace

Result<SimplifyStats> SimplifyBlock(BlockStmt* block,
                                    const std::vector<std::string>& params,
                                    const std::set<std::string>* observable_vars,
                                    const std::string& loc,
                                    const SimplifyOptions& options) {
  SimplifyStats stats;
  for (int pass = 0; pass < options.max_passes; ++pass) {
    int before = stats.constants_folded + stats.branches_pruned +
                 stats.dead_stores_removed;

    if (options.fold_constants || options.prune_branches) {
      // The CFG and abstract environments are computed once per round; the
      // fold mutates only expressions (statement identities survive), so
      // the entry environments stay sound for the pruning that follows.
      auto cfg = Cfg::Build(*block, params);
      if (!cfg.ok()) break;  // best effort: an unanalyzable tree stays as-is
      AbstractInterpretation ai =
          AbstractInterpretation::Run(*cfg.ValueOrDie());
      SimplifyContext ctx;
      ctx.cfg = cfg.ValueOrDie().get();
      ctx.ai = &ai;
      ctx.stats = &stats;
      ctx.options = &options;
      ctx.loc = loc;
      if (options.fold_constants) FoldStatements(block, ctx);
      if (options.prune_branches) PruneBranches(block, ctx);
    }

    if (options.eliminate_dead_stores) {
      auto cfg = Cfg::Build(*block, params);
      if (!cfg.ok()) break;
      DataflowResult liveness = DataflowResult::Run(*cfg.ValueOrDie());
      std::set<std::string> declared(params.begin(), params.end());
      CollectDeclaredNames(*block, &declared);
      DeadStoreContext ctx;
      ctx.cfg = cfg.ValueOrDie().get();
      ctx.liveness = &liveness;
      ctx.observable = observable_vars;
      ctx.declared = &declared;
      ctx.stats = &stats;
      ctx.loc = loc;
      EliminateDeadStores(block, ctx);
    }

    int after = stats.constants_folded + stats.branches_pruned +
                stats.dead_stores_removed;
    if (after == before) break;
  }

  if (options.note_invariant_guards) {
    NoteInvariantGuards(*block, &stats, loc);
  }
  return stats;
}

}  // namespace aggify
