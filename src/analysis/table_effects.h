// Interprocedural table-effect dataflow (ROADMAP item 4, docs/ANALYSIS.md §6).
//
// For each catalog function the analysis computes the set of persistent
// tables it may READ (query evaluation, subqueries, cursor queries) and the
// set it may WRITE (INSERT / UPDATE / DELETE), closed under calls via the
// purity call graph's edges:
//
//   reads(f)  = local_reads(f)  ∪  ⋃ over g ∈ callees(f) reads(g)
//   writes(f) = local_writes(f) ∪  ⋃ over g ∈ callees(f) writes(g)
//
// computed as a least fixpoint (finite powerset lattice, monotone transfer,
// so iteration converges even for mutual recursion). Calls the graph cannot
// resolve make the summary *opaque* — the function may touch any table —
// which every consumer must treat as "effects on everything" (sound, never
// optimistic).
//
// On top of the per-function summaries sit the cursor-loop judgments that
// unlock DML-body rewrites (AGG401/402 vs. AGG404/405/407):
//
//   - read/write disjointness: the tables Δ writes must be disjoint from
//     the tables Q (and the rest of Δ) reads, or the set-oriented rewrite
//     would observe its own writes (the Halloween self-dependence the
//     cursor evaluation never exhibits) → AGG404;
//   - write-shape classification: the body must be one of the two rewrite
//     families — an append-only single-row INSERT (family a) or a
//     key-equality accumulating UPDATE (family b) → AGG405 / AGG407
//     otherwise.
//
// Temp tables / table variables ('@t', '#t') are invisible here: their DML
// already flows through the scalar-aggregate path (analysis_sets.cc).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/purity.h"
#include "parser/query_ast.h"
#include "parser/statement.h"
#include "storage/catalog.h"

namespace aggify {

/// \brief Which persistent tables a statement tree / query / function may
/// touch. Names are lowercased (the catalog is case-insensitive).
struct TableEffectSet {
  std::set<std::string> reads;
  std::set<std::string> writes;
  /// A call to something the analysis cannot see (unknown function, or a
  /// function absent from the catalog): the summary is a lower bound only
  /// and consumers must assume effects on every table.
  bool opaque = false;
  /// What made the summary opaque ("calls unknown function f", ...).
  std::string opaque_evidence;

  void Join(const TableEffectSet& other);
  bool Touches(const std::string& lowercase_table) const {
    return opaque || reads.count(lowercase_table) != 0 ||
           writes.count(lowercase_table) != 0;
  }
  bool Reads(const std::string& lowercase_table) const {
    return opaque || reads.count(lowercase_table) != 0;
  }
  std::string ToString() const;
};

/// \brief Per-function table-effect summaries over a catalog, queryable for
/// arbitrary statement trees (cursor-loop bodies) and queries.
class TableEffectAnalysis {
 public:
  /// Builds the per-function fixpoint over every function registered in
  /// `catalog`. `is_builtin` marks pure built-in scalars (no table effects);
  /// with nullptr every non-catalog call is opaque. `catalog` may be null
  /// (no functions resolvable: every call is opaque).
  static TableEffectAnalysis Build(const Catalog* catalog,
                                   CallGraph::BuiltinPredicate is_builtin =
                                       nullptr);

  /// Effects of a statement tree evaluated against the summaries: local
  /// table accesses joined with the (interprocedural) effects of every
  /// function it calls, including calls nested in subqueries.
  TableEffectSet OfStatement(const Stmt& stmt) const;

  /// Effects of a query (reads of every base table in FROM / CTEs /
  /// subqueries, plus called functions' effects).
  TableEffectSet OfQuery(const SelectStmt& query) const;

  /// Effects of a scalar expression (subqueries and function calls).
  TableEffectSet OfExpr(const Expr& expr) const;

  /// Interprocedural summary of the named function. Built-ins are empty;
  /// unknown names are opaque.
  TableEffectSet OfFunction(const std::string& name) const;

 private:
  void AddCallEffects(const std::string& callee, TableEffectSet* out) const;
  void CollectStmt(const Stmt& stmt, TableEffectSet* out) const;
  void CollectQuery(const SelectStmt& query, TableEffectSet* out) const;
  void CollectExpr(const Expr& expr, TableEffectSet* out) const;

  std::map<std::string, TableEffectSet> per_function_;
  CallGraph::BuiltinPredicate is_builtin_;
};

/// \brief The two set-oriented DML rewrite families.
enum class DmlFamily : uint8_t {
  kAppendInsert,  ///< single-row INSERT VALUES → INSERT ... SELECT
  kAccumUpdate,   ///< key-equality accumulating UPDATE → grouped-sum UPDATE
};

/// \brief A classified DML loop body: which family it falls in and the
/// pieces the rewriter needs. Pointers alias the analyzed body.
struct DmlBodyPlan {
  DmlFamily family = DmlFamily::kAppendInsert;
  /// DML target table (as written in the body).
  std::string table;
  const InsertStmt* insert = nullptr;  ///< family a
  const UpdateStmt* update = nullptr;  ///< family b
  /// Optional row-pure IF guard wrapping the DML (no ELSE); null when the
  /// DML is unconditional.
  const IfStmt* guard = nullptr;
  /// family b: the accumulated column, the key column, the key expression
  /// (aliases into `update`), and whether the fold is `col = col - e`.
  std::string accum_column;
  std::string key_column;
  const Expr* key_expr = nullptr;
  const Expr* delta_expr = nullptr;  ///< e in `col = col ± e`
  bool subtract = false;
};

/// \brief Classifies the FETCH-stripped body of a cursor loop whose
/// applicability check refused it for persistent DML, deciding whether the
/// set-oriented rewrite families apply.
///
/// Admission requires (1) the body to match a family shape structurally,
/// (2) every expression feeding the DML to be row-pure (fetch variables,
/// loop-invariant variables, literals; calls only when their table effects
/// resolve and write nothing), and (3) the disjointness certificate: the
/// written table must not be read by the cursor query or by anything else
/// the body evaluates — including transitively through called functions.
///
/// \param body the FETCH-stripped loop body
/// \param cursor_query Q (reads feed the disjointness check)
/// \param fetch_vars FETCH INTO variables, positional
/// \param fx table-effect summaries over the enclosing catalog
/// \param catalog for the UPDATE family's column-type check; may be null
///   (the UPDATE family is then refused — the int-only restriction cannot
///   be verified)
/// \returns the plan, or NotApplicable carrying AGG404 (self-read-after-
///   write), AGG405 (UPDATE not key-disjoint/accumulating), or AGG407
///   (shape outside both families).
Result<DmlBodyPlan> ClassifyDmlBody(const BlockStmt& body,
                                    const SelectStmt& cursor_query,
                                    const std::vector<std::string>& fetch_vars,
                                    const TableEffectAnalysis& fx,
                                    const Catalog* catalog);

}  // namespace aggify
