// Structured diagnostics for the Aggify analyses (clang-tidy style).
//
// Every applicability rejection, soundness rejection, and optimization note
// carries a stable code (AGG1xx = rejections, AGG2xx = notes) so tools and
// the Table-1 census can bucket outcomes deterministically instead of
// grepping free-form strings.
//
// The analyses themselves keep returning Status::NotApplicable (the Result
// plumbing is unchanged); the code travels as a `[AGG###] ` message prefix
// written by NotApplicableDiag() and recovered by DiagnosticFromStatus().
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace aggify {

enum class DiagSeverity : uint8_t { kError, kWarning, kNote };

enum class DiagCode : uint16_t {
  // --- Rejections: why a cursor loop was left alone. ---
  kSelectStarCursor = 101,     ///< cursor query uses SELECT *
  kFetchArityMismatch = 102,   ///< FETCH INTO wider than the projection
  kInconsistentFetchVars = 103,///< FETCHes assign different variables
  kPersistentInsert = 104,     ///< body INSERTs into a persistent table
  kPersistentUpdate = 105,     ///< body UPDATEs a persistent table
  kPersistentDelete = 106,     ///< body DELETEs from a persistent table
  kReturnInLoop = 107,         ///< early function exit inside the body
  kNonCanonicalFetch = 108,    ///< not the single-trailing-FETCH shape
  kFetchVarLiveAfterLoop = 109,///< fetch variable observed after the loop
  kLoopLocalObservable = 110,  ///< loop-declared variable live after loop
  kImpureUdfCall = 111,        ///< body calls a UDF with persistent DML
  kUnknownFunctionCall = 112,  ///< body calls a function purity can't see
  kScriptError = 120,          ///< input failed to parse / load (lint)

  // --- Notes: facts the analyses proved about a rewritten loop. ---
  kRewritten = 201,            ///< loop became a custom aggregate
  kSortElided = 202,           ///< Eq. 6 sort dropped: body order-insensitive
  kMergeSynthesized = 203,     ///< decomposability proof produced a Merge
  kOrderEnforced = 204,        ///< body order-sensitive: Eq. 6 sort retained
  kParallelEligible = 205,     ///< rewrite may run as a parallel partial agg

  // --- Merge synthesis (homomorphism calculus, analysis/merge_synthesis.h).
  // 206/207 are positive facts; 208–212 explain why the calculus derived no
  // Merge for a loop that the fold algebra also rejected. All are notes: a
  // loop that stays serial is still rewritten correctly.
  kMergeRule = 206,            ///< calculus rule that produced a field's Merge
  kMergeCertified = 207,       ///< shuffle-sweep certificate passed
  kNonCommutativeUpdate = 208, ///< update not commutative under partitioning
  kStatefulGuard = 209,        ///< guard/branch state defeats reconstruction
  kCrossAccumulatorDep = 210,  ///< accumulators entangled beyond derived rule
  kUnrecognizedUpdate = 211,   ///< statement shape outside the calculus
  kCertificateFailed = 212,    ///< synthesized Merge failed the shuffle sweep

  // --- Simplification pipeline (abstract interpretation / Δ pruning). ---
  kDeadStore = 301,            ///< SET whose value is never observed
  kUnusedFetchColumn = 302,    ///< cursor column fetched but unused in Δ
  kConstantFalseBranch = 303,  ///< branch proven unreachable and pruned
  kLoweredToBuiltin = 304,     ///< Δ is a native fold: built-in agg emitted
  kLoopInvariantGuard = 305,   ///< guard reads only loop-invariant state
  kStaticTripCount = 306,      ///< FOR bounds constant: VALUES iteration

  // --- Table-effect & early-exit dataflow (analysis/table_effects.h,
  // analysis/early_exit.h). 401–403 are admitted facts about a recovered
  // loop (notes); 404–407 are typed refusals explaining why a DML body or
  // early exit stayed with the interpreted/unbounded plan. Refusals are
  // warnings except where the primary applicability code already covers the
  // loop (they then ride along in AggifyReport::skip_details).
  kDmlInsertRewritten = 401,   ///< append-only INSERT became INSERT..SELECT
  kDmlUpdateRewritten = 402,   ///< accumulating UPDATE became set-oriented
  kEarlyExitBounded = 403,     ///< BREAK proven monotone: TOP-N prefix bound
  kSelfReadAfterWrite = 404,   ///< Δ writes a table Q (or Δ) reads
  kNonKeyDisjointUpdate = 405, ///< UPDATE not key-disjoint / accumulating
  kNonMonotoneExit = 406,      ///< exit predicate not provably monotone
  kDmlShapeUnsupported = 407,  ///< DML body outside the rewrite families
};

/// Stable identifier, e.g. "AGG104".
std::string DiagCodeName(DiagCode code);

/// Kebab-case check name, e.g. "persistent-insert" (clang-tidy style).
const char* DiagCodeSlug(DiagCode code);

/// Severity class of the code. AGG111/AGG120 are errors (soundness hazard /
/// broken input), other AGG1xx are warnings (loop kept, opportunity missed),
/// AGG2xx are notes. Simplification codes: AGG301–303 are warnings (code
/// smell in the input script), AGG304–306 are notes (optimizations applied).
DiagSeverity DiagCodeSeverity(DiagCode code);

const char* SeverityName(DiagSeverity severity);

struct Diagnostic {
  DiagCode code = DiagCode::kScriptError;
  DiagSeverity severity = DiagSeverity::kWarning;
  /// Where: "<function>:<cursor>" for loops, a file path for script errors.
  std::string loc;
  /// Byte offset of the diagnosed statement in the originating script
  /// (0 when unknown or synthesized). Secondary sort key for stable,
  /// source-ordered lint output.
  size_t offset = 0;
  std::string message;
  /// Optional remediation hint ("move the INSERT after the loop", ...).
  std::string fixit;

  /// "loc: warning: message [aggify-persistent-insert]" (+ fixit line).
  std::string ToString() const;
};

/// Stable source order for lint output: (loc's file prefix, byte offset,
/// code, message). Discovery order — which follows the rewriter's analysis
/// phases and the catalog's function-name iteration — is NOT source order;
/// CI annotations and --format=json need the latter to be reproducible.
void SortDiagnosticsBySource(std::vector<Diagnostic>* diags);

/// Builds a Status::NotApplicable whose message carries the code prefix, so
/// existing Status/Result plumbing transports structured diagnostics.
Status NotApplicableDiag(DiagCode code, const std::string& message);

/// Recovers the Diagnostic from a NotApplicable status produced by
/// NotApplicableDiag (falls back to kScriptError for unprefixed messages).
Diagnostic DiagnosticFromStatus(const Status& status, std::string loc,
                                std::string fixit = "");

/// Convenience constructor with severity derived from the code.
Diagnostic MakeDiagnostic(DiagCode code, std::string loc, std::string message,
                          std::string fixit = "");

}  // namespace aggify
