// Homomorphism-calculus Merge synthesis: deriving merge operators for loop
// bodies far beyond the fold classifier's four-shape algebra.
//
// The fold classifier (analysis/fold_classifier.h) *recognizes* a fixed set
// of update shapes. This pass *derives* a Merge by normalizing every
// accumulator update into a compositional algebra over a symbolic state
// vector, in the style of the homomorphism calculus for user-defined
// aggregations (PAPERS.md):
//
//   1. Let-inlining: row-pure scratch locals are substituted into the
//      expressions that read them, so `SET @d = @x*2; SET @s = @s + @d`
//      normalizes to the direct fold `@s += @x*2`.
//   2. Affine decomposition: each `SET acc = e` is decomposed (with literal
//      coefficient folding) into `acc = coeff*acc + addend(row)`. A
//      coefficient that folds to the literal 1 is a sum homomorphism no
//      matter how the source arranged it (`@s = @x + @s + 1`,
//      `@s = 2*@s - @s + @x`); a zero coefficient with a row-pure factor is
//      a product; anything else (a non-unit constant, a row-dependent
//      coefficient with a nonzero addend) is NOT commutative under the
//      engine's interleaved morsel partitioning and is rejected with a
//      typed AGG2xx blocker.
//   3. Guarded folds: row-pure guards select rows; the guarded update must
//      itself be homomorphic. The compare-and-keep extremum patterns —
//      including the IF/ELSE NULL-seed form the classifier rejects — merge
//      by NULL-safe compare.
//   4. Product augmentation: `acc = acc * m` merges WITHOUT the unsafe
//      division inverse by augmenting the state with a factor image
//      (running product of fired row factors, seeded 1) merged by
//      multiplication, plus a zero count certifying why no division is
//      needed: merged = baseline * (image_l * image_r).
//   5. Derived accumulators: an unconditional `acc = g(other accumulators)`
//      positioned after every update of its dependencies (sum+count → avg)
//      is not merged at all — it is recomputed from the merged bases.
//
// Every per-field verdict is either a MergeFn expression over the reserved
// names @l/@r/@c (left partial, right partial, shared loop-entry baseline)
// plus any aux state, or a typed blocker. A plan that clears synthesis must
// additionally pass the shuffle-sweep certificate
// (aggify/merge_certificate.h) before the rewriter ships it — see DESIGN.md
// invariant 11.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "parser/statement.h"

namespace aggify {

enum class MergeRuleKind : uint8_t {
  /// Strict `acc = acc ± e` / extremum surface shape — PR 3's fold algebra
  /// would also have recognized it (the synthesized plan subsumes it).
  kFoldAlgebra,
  /// Affine update whose accumulator coefficient folded to the literal 1.
  kAffineSum,
  /// Unit-coefficient sum under row-pure guards (filtered fold), possibly
  /// via let-inlined branch-local scratch.
  kGuardedSum,
  /// Compare-and-keep min/max, including the IF/ELSE NULL-seed form.
  kExtremum,
  /// Multiplicative fold; merged via factor-image + zero-count aux state.
  kProductAugmented,
  /// acc = g(other accumulators): recomputed from the merged bases.
  kDerived,
  /// Never updated by the body: the shared baseline passes through.
  kInvariant,
};

const char* MergeRuleKindName(MergeRuleKind kind);

/// One conjunct of a guarded update's firing condition. `negated` records an
/// ELSE branch: the term passes when the predicate evaluates false *or
/// NULL* — exactly IF/ELSE semantics, which a syntactic `NOT p` would get
/// wrong for NULL.
struct GuardTerm {
  ExprPtr cond;
  bool negated = false;
};

/// A per-row auxiliary-state update attached to a product-augmented field.
/// The factor image accumulates the product of every fired row factor
/// (seeded 1, merged by multiplication); the zero count tallies fired
/// factors equal to zero — the calculus' certificate that merging needs no
/// division by a possibly-zero baseline.
struct AuxUpdate {
  enum class Kind : uint8_t { kFactorImage, kZeroCount };
  std::string name;  ///< reserved state variable ("@__img0", "@__zc0")
  Kind kind = Kind::kFactorImage;
  ExprPtr factor;    ///< row factor m (row vars / loop invariants only)
  std::vector<GuardTerm> guards;  ///< all must pass for the update to fire
};

struct FieldMergePlan {
  std::string field;
  MergeRuleKind rule = MergeRuleKind::kInvariant;
  /// The synthesized MergeFn over the reserved names @l / @r / @c and this
  /// field's aux names. Null for kDerived / kInvariant.
  ExprPtr merge_expr;
  /// kDerived only: g, re-evaluated over the merged base fields.
  ExprPtr recompute;
  /// Sum rules: the normalized row addend (drives native lowering and
  /// --explain). Null for multi-update or non-sum fields.
  ExprPtr row_term;
  /// kGuardedSum / kProductAugmented: the update carries row-pure guards.
  bool guarded = false;
  /// kExtremum only: direction.
  bool is_min = false;
  std::vector<AuxUpdate> aux;
  /// Which calculus step produced the rule, for --explain / lint notes.
  std::string note;
};

struct MergePlan {
  /// Every accumulator admits a homomorphic merge: the plan is usable.
  bool mergeable = false;
  /// Per-field plans in merge order: bases first, derived fields last (a
  /// derived recompute must see its dependencies already merged).
  std::vector<FieldMergePlan> fields;
  /// Typed AGG2xx blockers — one per defeating construct, all of them, so
  /// lint shows every reason in one pass. Empty iff mergeable.
  std::vector<Diagnostic> blockers;

  const FieldMergePlan* PlanFor(const std::string& field) const {
    for (const auto& f : fields) {
      if (f.field == field) return &f;
    }
    return nullptr;
  }

  /// One "field: rule [expr]" line per field, for --explain and
  /// GenerateSource.
  std::vector<std::string> DescribeRules() const;
};

/// Runs the calculus over a FETCH-stripped loop body. Parameters mirror
/// ClassifyLoopBody. Always returns a plan: `mergeable` false with typed
/// blockers when any field defeats the calculus.
std::shared_ptr<const MergePlan> SynthesizeMerge(
    const BlockStmt& body, const std::set<std::string>& fields,
    const std::set<std::string>& row_vars,
    const std::function<bool(const std::string&)>& is_pure_call = nullptr);

}  // namespace aggify
