#include "analysis/dataflow.h"

#include <algorithm>
#include <deque>

namespace aggify {

DataflowResult DataflowResult::Run(const Cfg& cfg) {
  DataflowResult r;
  r.cfg_ = &cfg;
  r.cfg_alive_ = cfg.liveness_token();
  const int n = cfg.size();
  r.live_in_.assign(n, {});
  r.live_out_.assign(n, {});
  r.rd_in_.assign(n, {});
  r.rd_out_.assign(n, {});

  // --- Reaching definitions: forward, OUT = GEN ∪ (IN − KILL). ---
  {
    std::deque<int> worklist;
    std::vector<bool> queued(n, false);
    for (int i = 0; i < n; ++i) {
      worklist.push_back(i);
      queued[i] = true;
    }
    while (!worklist.empty()) {
      int id = worklist.front();
      worklist.pop_front();
      queued[id] = false;
      const CfgNode& node = cfg.node(id);

      std::set<Definition> in;
      for (int p : node.predecessors) {
        in.insert(r.rd_out_[p].begin(), r.rd_out_[p].end());
      }
      std::set<Definition> out = in;
      for (const std::string& var : node.defs) {
        // KILL: all other definitions of var.
        for (auto it = out.begin(); it != out.end();) {
          if (it->var == var) {
            it = out.erase(it);
          } else {
            ++it;
          }
        }
        out.insert(Definition{id, var});
      }
      bool changed = (in != r.rd_in_[id]) || (out != r.rd_out_[id]);
      r.rd_in_[id] = std::move(in);
      r.rd_out_[id] = std::move(out);
      if (changed) {
        for (int s : node.successors) {
          if (!queued[s]) {
            worklist.push_back(s);
            queued[s] = true;
          }
        }
      }
    }
  }

  // --- Live variables: backward, IN = USE ∪ (OUT − DEF). ---
  {
    std::deque<int> worklist;
    std::vector<bool> queued(n, false);
    for (int i = n - 1; i >= 0; --i) {
      worklist.push_back(i);
      queued[i] = true;
    }
    while (!worklist.empty()) {
      int id = worklist.front();
      worklist.pop_front();
      queued[id] = false;
      const CfgNode& node = cfg.node(id);

      std::set<std::string> out;
      for (int s : node.successors) {
        out.insert(r.live_in_[s].begin(), r.live_in_[s].end());
      }
      std::set<std::string> in = out;
      for (const std::string& var : node.defs) in.erase(var);
      for (const std::string& var : node.uses) in.insert(var);
      bool changed = (in != r.live_in_[id]) || (out != r.live_out_[id]);
      r.live_in_[id] = std::move(in);
      r.live_out_[id] = std::move(out);
      if (changed) {
        for (int p : node.predecessors) {
          if (!queued[p]) {
            worklist.push_back(p);
            queued[p] = true;
          }
        }
      }
    }
  }

  // --- UD / DU chains. A use of v at node u is reached by every
  // definition of v in RD-IN[u]. (Statement-level granularity: uses within
  // a statement happen before its own definitions, e.g. SET @x = @x + 1.)
  for (int id = 0; id < n; ++id) {
    const CfgNode& node = cfg.node(id);
    for (const std::string& var : node.uses) {
      Use use{id, var};
      for (const Definition& d : r.rd_in_[id]) {
        if (d.var == var) {
          r.ud_[use].push_back(d);
          r.du_[d].push_back(use);
        }
      }
    }
  }

  return r;
}

std::vector<Definition> DataflowResult::UdChain(int node,
                                                const std::string& var) const {
  auto it = ud_.find(Use{node, var});
  return it == ud_.end() ? std::vector<Definition>{} : it->second;
}

std::vector<Use> DataflowResult::DuChain(const Definition& d) const {
  auto it = du_.find(d);
  return it == du_.end() ? std::vector<Use>{} : it->second;
}

std::vector<Use> DataflowResult::UsesIn(const std::vector<int>& nodes) const {
  AssertCfgAlive();
  std::vector<Use> out;
  for (int id : nodes) {
    for (const std::string& var : cfg_->node(id).uses) {
      out.push_back(Use{id, var});
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Use& a, const Use& b) {
                          return a.node == b.node && a.var == b.var;
                        }),
            out.end());
  return out;
}

}  // namespace aggify
