// Catalog: the registry of tables, scalar functions (UDFs), and aggregate
// functions (built-in and Aggify-synthesized).
//
// Function and aggregate definitions are owned via shared_ptr to types
// defined in higher layers (ast/, aggregates/); the catalog itself only needs
// their identity, keeping storage free of upward dependencies.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/robustness_stats.h"
#include "storage/table.h"

namespace aggify {

struct FunctionDef;       // ast/procedural_ast.h
class AggregateFunction;  // aggregates/aggregate_function.h

class Catalog {
 public:
  /// Creates a persistent table. Errors: AlreadyExists.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Creates a temp table / table variable (worktable accounting).
  /// Temp names live in their own namespace, so "#t" and "t" can coexist.
  Result<Table*> CreateTempTable(const std::string& name, Schema schema);

  /// Drops a temp table (no-op if absent; end-of-procedure cleanup).
  void DropTempTable(const std::string& name);

  /// Looks up persistent first, then temp. Errors: NotFound.
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Registers a UDF / stored procedure. Replaces any previous definition
  /// with the same name (CREATE OR ALTER semantics).
  void RegisterFunction(const std::string& name,
                        std::shared_ptr<const FunctionDef> def);

  Result<std::shared_ptr<const FunctionDef>> GetFunction(
      const std::string& name) const;
  bool HasFunction(const std::string& name) const;

  /// Registers an aggregate function (built-in or synthesized). Replaces.
  void RegisterAggregate(const std::string& name,
                         std::shared_ptr<const AggregateFunction> agg);

  Result<std::shared_ptr<const AggregateFunction>> GetAggregate(
      const std::string& name) const;
  bool HasAggregate(const std::string& name) const;

  std::vector<std::string> TableNames() const;
  std::vector<std::string> FunctionNames() const;
  std::vector<std::string> AggregateNames() const;

  /// Plan-cache fencing. Cached physical plans hold raw Table pointers and
  /// aggregate shared_ptrs, so catalog mutations must invalidate them:
  ///  - persistent_generation() bumps on persistent-table creation and
  ///    aggregate registration; every cached plan checks it.
  ///  - temp_generation() bumps on temp-table creation/drop (every cursor
  ///    OPEN/CLOSE); only plans touching worktables check it, so the
  ///    original cursor programs' churn does not evict unrelated plans.
  /// Index creation goes through Table directly and does not bump — create
  /// indexes before querying within a session.
  int64_t persistent_generation() const { return persistent_generation_; }
  int64_t temp_generation() const { return temp_generation_; }

 private:
  // Case-insensitive name comparator (SQL identifiers).
  struct NameLess {
    bool operator()(const std::string& a, const std::string& b) const;
  };
  std::map<std::string, std::unique_ptr<Table>, NameLess> tables_;
  std::map<std::string, std::unique_ptr<Table>, NameLess> temp_tables_;
  std::map<std::string, std::shared_ptr<const FunctionDef>, NameLess>
      functions_;
  std::map<std::string, std::shared_ptr<const AggregateFunction>, NameLess>
      aggregates_;
  int64_t persistent_generation_ = 0;
  int64_t temp_generation_ = 0;
};

/// \brief A database instance: catalog plus the I/O accounting shared by all
/// executions against it.
class Database {
 public:
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }
  RobustnessStats& robustness() { return robustness_; }
  const RobustnessStats& robustness() const { return robustness_; }

  /// Monotonic counter used to name synthesized objects (worktables,
  /// generated aggregates) uniquely.
  int64_t NextObjectId() { return ++object_id_; }

 private:
  Catalog catalog_;
  IoStats stats_;
  RobustnessStats robustness_;
  int64_t object_id_ = 0;
};

}  // namespace aggify
