#include "storage/catalog.h"

#include <cctype>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace aggify {

bool Catalog::NameLess::operator()(const std::string& a,
                                   const std::string& b) const {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int ca = std::tolower(static_cast<unsigned char>(a[i]));
    int cb = std::tolower(static_cast<unsigned char>(b[i]));
    if (ca != cb) return ca < cb;
  }
  return a.size() < b.size();
}

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  auto table = std::make_unique<Table>(name, std::move(schema),
                                       /*is_worktable=*/false);
  Table* raw = table.get();
  tables_[name] = std::move(table);
  ++persistent_generation_;
  return raw;
}

Result<Table*> Catalog::CreateTempTable(const std::string& name,
                                        Schema schema) {
  if (temp_tables_.count(name) != 0) {
    return Status::AlreadyExists("temp table already exists: " + name);
  }
  auto table = std::make_unique<Table>(name, std::move(schema),
                                       /*is_worktable=*/true);
  Table* raw = table.get();
  temp_tables_[name] = std::move(table);
  ++temp_generation_;
  return raw;
}

void Catalog::DropTempTable(const std::string& name) {
  if (temp_tables_.erase(name) > 0) ++temp_generation_;
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  AGGIFY_FAILPOINT("catalog.get_table");
  auto it = tables_.find(name);
  if (it != tables_.end()) return it->second.get();
  auto tt = temp_tables_.find(name);
  if (tt != temp_tables_.end()) return tt->second.get();
  return Status::NotFound("table not found: " + name);
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  AGGIFY_FAILPOINT("catalog.get_table");
  auto it = tables_.find(name);
  if (it != tables_.end()) return static_cast<const Table*>(it->second.get());
  auto tt = temp_tables_.find(name);
  if (tt != temp_tables_.end()) {
    return static_cast<const Table*>(tt->second.get());
  }
  return Status::NotFound("table not found: " + name);
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) != 0 || temp_tables_.count(name) != 0;
}

void Catalog::RegisterFunction(const std::string& name,
                               std::shared_ptr<const FunctionDef> def) {
  functions_[name] = std::move(def);
}

Result<std::shared_ptr<const FunctionDef>> Catalog::GetFunction(
    const std::string& name) const {
  AGGIFY_FAILPOINT("catalog.get_function");
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return Status::NotFound("function not found: " + name);
  }
  return it->second;
}

bool Catalog::HasFunction(const std::string& name) const {
  return functions_.count(name) != 0;
}

void Catalog::RegisterAggregate(const std::string& name,
                                std::shared_ptr<const AggregateFunction> agg) {
  aggregates_[name] = std::move(agg);
  ++persistent_generation_;
}

Result<std::shared_ptr<const AggregateFunction>> Catalog::GetAggregate(
    const std::string& name) const {
  AGGIFY_FAILPOINT("catalog.get_aggregate");
  auto it = aggregates_.find(name);
  if (it == aggregates_.end()) {
    return Status::NotFound("aggregate not found: " + name);
  }
  return it->second;
}

bool Catalog::HasAggregate(const std::string& name) const {
  return aggregates_.count(name) != 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [k, v] : tables_) names.push_back(k);
  return names;
}

std::vector<std::string> Catalog::FunctionNames() const {
  std::vector<std::string> names;
  for (const auto& [k, v] : functions_) names.push_back(k);
  return names;
}

std::vector<std::string> Catalog::AggregateNames() const {
  std::vector<std::string> names;
  for (const auto& [k, v] : aggregates_) names.push_back(k);
  return names;
}

}  // namespace aggify
