// Table: an in-memory paged row store with buffer-pool accounting.
//
// Rows are grouped into fixed-byte-budget pages (8 KiB by default, like SQL
// Server). Scans charge one logical read per page touched; this is what makes
// the Table 2 reproduction meaningful rather than cosmetic.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/io_stats.h"
#include "types/schema.h"

namespace aggify {

/// Default page byte budget (matches SQL Server's 8 KiB pages).
inline constexpr int64_t kDefaultPageBytes = 8192;

class Table;

/// \brief A hash index on one column of a table. Maps key value -> row ids.
/// Seeks charge logical reads proportional to the pages the matching rows
/// live on (plus one for the index probe itself).
class HashIndex {
 public:
  HashIndex(std::string name, size_t column_index)
      : name_(std::move(name)), column_(column_index) {}

  const std::string& name() const { return name_; }
  size_t column_index() const { return column_; }

  void Insert(const Value& key, int64_t row_id);

  /// Row ids whose indexed column StructurallyEquals `key`.
  const std::vector<int64_t>* Lookup(const Value& key) const;

 private:
  struct KeyHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct KeyEq {
    bool operator()(const Value& a, const Value& b) const {
      return a.StructurallyEquals(b);
    }
  };
  std::string name_;
  size_t column_;
  std::unordered_map<Value, std::vector<int64_t>, KeyHash, KeyEq> map_;
};

class Table {
 public:
  /// \param is_worktable true for cursor/temp worktables: inserts count as
  /// worktable page writes and reads as worktable page reads.
  Table(std::string name, Schema schema, bool is_worktable = false,
        int64_t page_bytes = kDefaultPageBytes);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  bool is_worktable() const { return is_worktable_; }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  int64_t num_pages() const;

  /// Appends a row; charges a worktable page write when a worktable page
  /// fills (and for the trailing partial page at first write).
  /// Precondition: row arity matches the schema.
  Status Insert(Row row, IoStats* stats);

  /// Row access without I/O accounting (tests, index build).
  const Row& RowAt(int64_t row_id) const { return rows_[row_id]; }

  /// Reads a row charging page I/O: the first access to each page per
  /// `last_page` cookie increments the appropriate read counter. Callers
  /// keep `last_page` (init -1) across a scan so sequential access charges
  /// one read per page, like a real buffer pool with a page pin.
  const Row& ReadRow(int64_t row_id, int64_t* last_page, IoStats* stats) const;

  /// Reads `count` consecutive rows starting at `begin`, returning a pointer
  /// into the contiguous row store (valid until the next mutation). Charges
  /// exactly the page reads a sequential ReadRow loop over the same range
  /// would — one per page in the range not already pinned by `last_page` —
  /// so the batch scan's IoStats are identical to the row scan's. This is
  /// the feed of the vectorized pipeline (docs/VECTORIZATION.md).
  /// Precondition: 0 <= begin, count >= 1, begin + count <= num_rows().
  const Row* ReadBatch(int64_t begin, int64_t count, int64_t* last_page,
                       IoStats* stats) const;

  /// Deletes all rows matching `pred` (linear; used by temp-table DML).
  /// Charges a full scan.
  int64_t DeleteWhere(const std::function<bool(const Row&)>& pred,
                      IoStats* stats);

  /// In-place update of all rows matching `pred`. Charges a full scan.
  Status UpdateWhere(const std::function<bool(const Row&)>& pred,
                     const std::function<Status(Row*)>& update, IoStats* stats);

  /// Removes all rows (cursor worktable reuse).
  void Clear();

  /// Copy of the current row set. Guarded DML rewrites snapshot the target
  /// table before running the set-oriented statement so a runtime failure
  /// (or a verify-mode comparison) can restore loop-entry state.
  std::vector<Row> SnapshotRows() const { return rows_; }

  /// Replaces the row set with `rows` and rebuilds every index (row ids
  /// change, so existing indexes would dangle).
  void RestoreRows(std::vector<Row> rows);

  /// Creates a hash index on `column_name`. Errors: NotFound.
  Status CreateIndex(const std::string& index_name,
                     const std::string& column_name);

  /// Index on `column_name` if one exists, else nullptr.
  const HashIndex* FindIndex(const std::string& column_name) const;

  /// Rows per page given the schema's wire size (>= 1).
  int64_t rows_per_page() const { return rows_per_page_; }

 private:
  int64_t PageOf(int64_t row_id) const { return row_id / rows_per_page_; }

  std::string name_;
  Schema schema_;
  bool is_worktable_;
  int64_t rows_per_page_;
  std::vector<Row> rows_;
  std::vector<std::unique_ptr<HashIndex>> indexes_;
};

}  // namespace aggify
