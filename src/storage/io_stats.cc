#include "storage/io_stats.h"

#include <sstream>

namespace aggify {

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "logical_reads=" << logical_reads
     << " worktable_writes=" << worktable_pages_written
     << " worktable_reads=" << worktable_pages_read
     << " cursor_fetches=" << cursor_fetches
     << " cursors_opened=" << cursors_opened
     << " queries=" << queries_executed
     << " rows=" << rows_produced;
  return os.str();
}

}  // namespace aggify
