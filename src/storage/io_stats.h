// I/O and execution counters.
//
// The paper's Table 2 reports "logical reads" — buffer-pool page accesses —
// for cursor programs vs. their Aggify rewrites. We account the same way:
// every page touched by a scan, index seek, or worktable read increments
// `logical_reads`; cursor materialization additionally counts worktable page
// writes (the mechanism §2.3 blames for the "curse").
#pragma once

#include <cstdint>
#include <string>

namespace aggify {

struct IoStats {
  /// Pages read from persistent tables and indexes.
  int64_t logical_reads = 0;
  /// Pages written to cursor/temp worktables.
  int64_t worktable_pages_written = 0;
  /// Pages read back from cursor/temp worktables (also buffer-pool reads in
  /// SQL Server's accounting; reported separately so benches can show both).
  int64_t worktable_pages_read = 0;
  /// Rows fetched one-at-a-time through cursors.
  int64_t cursor_fetches = 0;
  /// Number of cursor OPENs (== worktable creations).
  int64_t cursors_opened = 0;
  /// Number of queries executed (top-level and nested).
  int64_t queries_executed = 0;
  /// Rows produced by all operators (work proxy).
  int64_t rows_produced = 0;

  void Reset() { *this = IoStats{}; }

  /// Adds another counter set into this one. Parallel workers account into
  /// private IoStats and the coordinator folds them in after joining, so the
  /// shared counters are never written concurrently.
  void MergeFrom(const IoStats& other) {
    logical_reads += other.logical_reads;
    worktable_pages_written += other.worktable_pages_written;
    worktable_pages_read += other.worktable_pages_read;
    cursor_fetches += other.cursor_fetches;
    cursors_opened += other.cursors_opened;
    queries_executed += other.queries_executed;
    rows_produced += other.rows_produced;
  }

  /// Total buffer-pool reads SQL Server-style: base pages + worktable pages.
  int64_t TotalLogicalReads() const {
    return logical_reads + worktable_pages_read;
  }

  std::string ToString() const;
};

/// \brief Cost model for the cursor machinery this in-memory substrate
/// undercosts relative to a disk-based DBMS (DESIGN.md §3).
///
/// In SQL Server every FETCH NEXT is a statement execution through the
/// query processor plus cursor-state maintenance (commonly measured in the
/// tens of microseconds), and cursor results are materialized to 8 KiB
/// worktable pages with latching and buffer-pool traffic. In this substrate
/// a fetch is a function call and a worktable is a std::vector, so wall
/// time alone understates the "curse" §2.3 describes. Benches therefore
/// report modeled time = wall time + these per-event charges; the raw wall
/// numbers are also recorded in EXPERIMENTS.md. Aggify-rewritten plans
/// incur none of these events, so the charge is zero for them by
/// construction — this is an *event-based* model, not a thumb on the scale.
struct CursorCostModel {
  double per_fetch_us = 25.0;            ///< FETCH statement dispatch
  double per_cursor_open_us = 100.0;     ///< worktable creation / teardown
  double per_worktable_write_page_us = 40.0;
  double per_worktable_read_page_us = 20.0;

  /// Seconds of modeled cursor-machinery cost for the given counters.
  double Seconds(const IoStats& stats) const {
    return (static_cast<double>(stats.cursor_fetches) * per_fetch_us +
            static_cast<double>(stats.cursors_opened) * per_cursor_open_us +
            static_cast<double>(stats.worktable_pages_written) *
                per_worktable_write_page_us +
            static_cast<double>(stats.worktable_pages_read) *
                per_worktable_read_page_us) /
           1e6;
  }
};

}  // namespace aggify
