#include "storage/table.h"

#include <algorithm>

#include "common/failpoint.h"

namespace aggify {

void HashIndex::Insert(const Value& key, int64_t row_id) {
  map_[key].push_back(row_id);
}

const std::vector<int64_t>* HashIndex::Lookup(const Value& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

Table::Table(std::string name, Schema schema, bool is_worktable,
             int64_t page_bytes)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      is_worktable_(is_worktable) {
  int64_t row_bytes = std::max<int64_t>(1, schema_.RowWireSize());
  rows_per_page_ = std::max<int64_t>(1, page_bytes / row_bytes);
}

int64_t Table::num_pages() const {
  return (num_rows() + rows_per_page_ - 1) / rows_per_page_;
}

Status Table::Insert(Row row, IoStats* stats) {
  AGGIFY_FAILPOINT("storage.table.insert");
  if (row.size() != schema_.num_columns()) {
    return Status::ExecutionError(
        "insert arity mismatch on table '" + name_ + "': got " +
        std::to_string(row.size()) + " values, schema has " +
        std::to_string(schema_.num_columns()));
  }
  int64_t row_id = num_rows();
  // Maintain indexes before the move.
  for (auto& idx : indexes_) {
    idx->Insert(row[idx->column_index()], row_id);
  }
  rows_.push_back(std::move(row));
  if (is_worktable_ && stats != nullptr) {
    // Charge a page write whenever a new page is started.
    if (row_id % rows_per_page_ == 0) ++stats->worktable_pages_written;
  }
  return Status::OK();
}

const Row& Table::ReadRow(int64_t row_id, int64_t* last_page,
                          IoStats* stats) const {
  int64_t page = PageOf(row_id);
  if (page != *last_page) {
    *last_page = page;
    if (stats != nullptr) {
      if (is_worktable_) {
        ++stats->worktable_pages_read;
      } else {
        ++stats->logical_reads;
      }
    }
  }
  return rows_[row_id];
}

const Row* Table::ReadBatch(int64_t begin, int64_t count, int64_t* last_page,
                            IoStats* stats) const {
  const int64_t first = PageOf(begin);
  const int64_t last = PageOf(begin + count - 1);
  if (stats != nullptr) {
    int64_t pages = last - first + 1;
    if (first == *last_page) --pages;  // already pinned, like ReadRow's cookie
    if (is_worktable_) {
      stats->worktable_pages_read += pages;
    } else {
      stats->logical_reads += pages;
    }
  }
  *last_page = last;
  return rows_.data() + begin;
}

int64_t Table::DeleteWhere(const std::function<bool(const Row&)>& pred,
                           IoStats* stats) {
  if (stats != nullptr) {
    if (is_worktable_) {
      stats->worktable_pages_read += num_pages();
    } else {
      stats->logical_reads += num_pages();
    }
  }
  int64_t before = num_rows();
  rows_.erase(std::remove_if(rows_.begin(), rows_.end(), pred), rows_.end());
  // Indexes would be stale after deletion; drop them (temp tables in the
  // reproduced workloads never mix indexes with deletes).
  if (before != num_rows()) indexes_.clear();
  return before - num_rows();
}

Status Table::UpdateWhere(const std::function<bool(const Row&)>& pred,
                          const std::function<Status(Row*)>& update,
                          IoStats* stats) {
  AGGIFY_FAILPOINT("storage.table.update");
  if (stats != nullptr) {
    if (is_worktable_) {
      stats->worktable_pages_read += num_pages();
    } else {
      stats->logical_reads += num_pages();
    }
  }
  bool touched = false;
  for (Row& r : rows_) {
    if (pred(r)) {
      RETURN_NOT_OK(update(&r));
      touched = true;
    }
  }
  if (touched) indexes_.clear();
  return Status::OK();
}

void Table::Clear() {
  rows_.clear();
  indexes_.clear();
}

void Table::RestoreRows(std::vector<Row> rows) {
  rows_ = std::move(rows);
  std::vector<std::unique_ptr<HashIndex>> rebuilt;
  rebuilt.reserve(indexes_.size());
  for (const auto& idx : indexes_) {
    auto fresh = std::make_unique<HashIndex>(idx->name(), idx->column_index());
    for (int64_t i = 0; i < num_rows(); ++i) {
      fresh->Insert(rows_[i][fresh->column_index()], i);
    }
    rebuilt.push_back(std::move(fresh));
  }
  indexes_ = std::move(rebuilt);
}

Status Table::CreateIndex(const std::string& index_name,
                          const std::string& column_name) {
  ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column_name));
  auto idx = std::make_unique<HashIndex>(index_name, col);
  for (int64_t i = 0; i < num_rows(); ++i) {
    idx->Insert(rows_[i][col], i);
  }
  indexes_.push_back(std::move(idx));
  return Status::OK();
}

const HashIndex* Table::FindIndex(const std::string& column_name) const {
  auto col = schema_.IndexOf(column_name);
  if (!col.ok()) return nullptr;
  for (const auto& idx : indexes_) {
    if (idx->column_index() == *col) return idx.get();
  }
  return nullptr;
}

}  // namespace aggify
