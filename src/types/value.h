// Value: the runtime representation of one scalar datum.
//
// SQL three-valued logic: NULL propagates through arithmetic and comparisons;
// boolean connectives use Kleene semantics (see And/Or/Not).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"

namespace aggify {

/// \brief Days since 1970-01-01 (proleptic Gregorian).
struct Date {
  int32_t days = 0;
  bool operator==(const Date& o) const { return days == o.days; }
  auto operator<=>(const Date& o) const { return days <=> o.days; }
};

/// \brief Builds a Date from a calendar date. Out-of-range months/days are
/// the caller's responsibility (generators only produce valid dates).
Date MakeDate(int year, int month, int day);

/// \brief Parses 'YYYY-MM-DD'.
Result<Date> DateFromString(const std::string& s);

/// \brief Renders 'YYYY-MM-DD'.
std::string DateToString(Date d);

class Value {
 public:
  Value() = default;  // NULL
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Repr(std::in_place_index<1>, b)); }
  static Value Int(int64_t i) { return Value(Repr(std::in_place_index<2>, i)); }
  static Value Double(double d) {
    return Value(Repr(std::in_place_index<3>, d));
  }
  static Value String(std::string s) {
    return Value(Repr(std::in_place_index<4>, std::move(s)));
  }
  static Value FromDate(Date d) { return Value(Repr(std::in_place_index<5>, d)); }
  /// Tuple value (cheap to copy; payload shared and immutable).
  static Value Record(std::vector<Value> fields) {
    return Value(Repr(std::in_place_index<6>,
                      std::make_shared<const std::vector<Value>>(
                          std::move(fields))));
  }

  bool is_null() const { return repr_.index() == 0; }
  bool is_bool() const { return repr_.index() == 1; }
  bool is_int() const { return repr_.index() == 2; }
  bool is_double() const { return repr_.index() == 3; }
  bool is_string() const { return repr_.index() == 4; }
  bool is_date() const { return repr_.index() == 5; }
  bool is_record() const { return repr_.index() == 6; }
  bool is_numeric() const { return is_int() || is_double(); }

  TypeId type_id() const {
    switch (repr_.index()) {
      case 1: return TypeId::kBool;
      case 2: return TypeId::kInt;
      case 3: return TypeId::kDouble;
      case 4: return TypeId::kString;
      case 5: return TypeId::kDate;
      case 6: return TypeId::kRecord;
      default: return TypeId::kNull;
    }
  }

  // Accessors; preconditions checked only by assert (hot paths).
  bool bool_value() const { return std::get<1>(repr_); }
  int64_t int_value() const { return std::get<2>(repr_); }
  double double_value() const { return std::get<3>(repr_); }
  const std::string& string_value() const { return std::get<4>(repr_); }
  Date date_value() const { return std::get<5>(repr_); }
  const std::vector<Value>& record_value() const { return *std::get<6>(repr_); }

  /// Numeric value as double; ints widen. Precondition: is_numeric().
  double AsDouble() const {
    return is_int() ? static_cast<double>(int_value()) : double_value();
  }

  /// Coerces to the given type (numeric widening/narrowing, string
  /// parse for dates). Null coerces to null of any type.
  Result<Value> CastTo(TypeId target) const;

  /// Deep structural equality used by tests and grouping: NULL equals NULL,
  /// ints and doubles compare cross-type numerically.
  bool StructurallyEquals(const Value& o) const;

  /// Hash consistent with StructurallyEquals.
  uint64_t Hash() const;

  /// Rendering for diagnostics and result printing.
  std::string ToString() const;

 private:
  using Repr =
      std::variant<std::monostate, bool, int64_t, double, std::string, Date,
                   std::shared_ptr<const std::vector<Value>>>;
  explicit Value(Repr r) : repr_(std::move(r)) {}
  Repr repr_;
};

// --- SQL operators. Every function returns NULL when any input is NULL
// (except the Kleene connectives which follow three-valued logic). Type
// mismatches yield Status::TypeError. ---

Result<Value> Add(const Value& a, const Value& b);
Result<Value> Subtract(const Value& a, const Value& b);
Result<Value> Multiply(const Value& a, const Value& b);
Result<Value> Divide(const Value& a, const Value& b);
Result<Value> Modulo(const Value& a, const Value& b);
Result<Value> Negate(const Value& a);

/// Three-way comparison: -1/0/+1 as Value::Int, or NULL if either side is.
Result<Value> Compare(const Value& a, const Value& b);

// Comparison predicates built on Compare; result is Bool or NULL.
Result<Value> Eq(const Value& a, const Value& b);
Result<Value> Ne(const Value& a, const Value& b);
Result<Value> Lt(const Value& a, const Value& b);
Result<Value> Le(const Value& a, const Value& b);
Result<Value> Gt(const Value& a, const Value& b);
Result<Value> Ge(const Value& a, const Value& b);

// Kleene three-valued connectives.
Result<Value> And(const Value& a, const Value& b);
Result<Value> Or(const Value& a, const Value& b);
Result<Value> Not(const Value& a);

/// String concatenation (both sides cast to string; NULL propagates).
Result<Value> Concat(const Value& a, const Value& b);

/// Total order for sorting: NULLs first, then by type-aware comparison.
/// Unlike Compare this never fails; cross-type non-numeric pairs order by
/// TypeId. Returns -1/0/+1.
int TotalOrderCompare(const Value& a, const Value& b);

}  // namespace aggify
