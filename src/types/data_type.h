// Logical data types of the dialect.
//
// The runtime representation is deliberately narrow (see value.h): DECIMAL
// columns execute as binary double. The paper itself (§9) notes its prototype
// changes numeric semantics when translating T-SQL to C#; none of the
// reproduced experiments depend on decimal rounding (see DESIGN.md §3).
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace aggify {

enum class TypeId : uint8_t {
  kNull = 0,   ///< type of the NULL literal before coercion
  kBool,
  kInt,        ///< 64-bit signed integer (covers INT / BIGINT / SMALLINT)
  kDouble,     ///< binary double (covers FLOAT / DECIMAL / NUMERIC)
  kString,     ///< variable-length string (covers CHAR / VARCHAR / TEXT)
  kDate,       ///< days since 1970-01-01
  kRecord,     ///< tuple of values; the UDT used by synthesized aggregates'
               ///< Terminate() to return all live loop variables (§5.4)
};

/// \brief A column/variable type: a TypeId plus the declared width/precision
/// (kept for DDL fidelity and data-movement accounting, not enforced at
/// runtime).
struct DataType {
  TypeId id = TypeId::kNull;
  /// Declared length for CHAR(n)/VARCHAR(n), precision for DECIMAL(p,s);
  /// 0 when unspecified.
  int32_t width = 0;
  int32_t scale = 0;

  DataType() = default;
  explicit DataType(TypeId tid, int32_t w = 0, int32_t s = 0)
      : id(tid), width(w), scale(s) {}

  static DataType Bool() { return DataType(TypeId::kBool); }
  static DataType Int() { return DataType(TypeId::kInt); }
  static DataType Double() { return DataType(TypeId::kDouble); }
  static DataType Decimal(int32_t p, int32_t s) {
    return DataType(TypeId::kDouble, p, s);
  }
  static DataType String(int32_t n = 0) {
    return DataType(TypeId::kString, n);
  }
  static DataType Date() { return DataType(TypeId::kDate); }

  bool is_numeric() const {
    return id == TypeId::kInt || id == TypeId::kDouble;
  }

  bool operator==(const DataType& o) const { return id == o.id; }

  /// SQL-ish rendering, e.g. "DECIMAL(15,2)", "CHAR(25)", "INT".
  std::string ToString() const;

  /// Wire size in bytes of one value of this type, used by the client
  /// network model (§10.6): matches the paper's accounting (4-byte ints,
  /// width-byte chars, 9-byte decimals, 8-byte floats, 3-byte dates).
  int32_t WireSize() const;
};

/// \brief Parses a type name from DDL ("int", "decimal", "char", ...).
Result<DataType> DataTypeFromName(const std::string& name, int32_t width,
                                  int32_t scale);

}  // namespace aggify
