// Schema and Row: the tuple model shared by storage, planner and executor.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"
#include "types/value.h"

namespace aggify {

/// \brief One attribute of a schema. `qualifier` is the table name or alias
/// the column is visible under ("" when unqualified, e.g. computed columns).
struct Column {
  std::string name;
  DataType type;
  std::string qualifier;

  Column() = default;
  Column(std::string n, DataType t, std::string q = "")
      : name(std::move(n)), type(t), qualifier(std::move(q)) {}

  /// "qualifier.name" or "name".
  std::string FullName() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

/// \brief An ordered list of columns. Lookup is ASCII case-insensitive,
/// optionally qualified.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> cols) : columns_(std::move(cols)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  /// Index of the column matching `name` (optionally "qual.name").
  /// Errors: NotFound if absent, BindError if ambiguous.
  Result<size_t> IndexOf(const std::string& name) const;

  /// True if some column matches `name` unambiguously.
  bool Contains(const std::string& name) const {
    return IndexOf(name).ok();
  }

  /// Schema with all qualifiers replaced by `alias`.
  Schema WithQualifier(const std::string& alias) const;

  /// Concatenation (for joins).
  static Schema Concat(const Schema& left, const Schema& right);

  /// "(a INT, t.b VARCHAR)" — diagnostics only.
  std::string ToString() const;

  /// Total wire size of one row of this schema in bytes (client model).
  int64_t RowWireSize() const;

 private:
  std::vector<Column> columns_;
};

/// \brief A materialized tuple. Values are positional against some Schema.
using Row = std::vector<Value>;

/// Hash of a full row (order-sensitive), consistent with
/// Value::StructurallyEquals per element.
uint64_t HashRow(const Row& row);

/// Element-wise StructurallyEquals.
bool RowsEqual(const Row& a, const Row& b);

/// Diagnostics: "[1, foo, NULL]".
std::string RowToString(const Row& row);

}  // namespace aggify
