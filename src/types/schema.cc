#include "types/schema.h"

#include "common/string_util.h"

namespace aggify {

Result<size_t> Schema::IndexOf(const std::string& name) const {
  std::string qual;
  std::string base = name;
  auto dot = name.find('.');
  if (dot != std::string::npos) {
    qual = name.substr(0, dot);
    base = name.substr(dot + 1);
  }
  size_t found = SIZE_MAX;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& c = columns_[i];
    if (!EqualsIgnoreCase(c.name, base)) continue;
    if (!qual.empty() && !EqualsIgnoreCase(c.qualifier, qual)) continue;
    if (found != SIZE_MAX) {
      return Status::BindError("ambiguous column reference: " + name);
    }
    found = i;
  }
  if (found == SIZE_MAX) {
    return Status::NotFound("column not found: " + name);
  }
  return found;
}

Schema Schema::WithQualifier(const std::string& alias) const {
  Schema out;
  for (const Column& c : columns_) {
    out.AddColumn(Column(c.name, c.type, alias));
  }
  return out;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  Schema out = left;
  for (const Column& c : right.columns()) out.AddColumn(c);
  return out;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].FullName() + " " + columns_[i].type.ToString();
  }
  out += ")";
  return out;
}

int64_t Schema::RowWireSize() const {
  int64_t total = 0;
  for (const Column& c : columns_) total += c.type.WireSize();
  return total;
}

uint64_t HashRow(const Row& row) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const Value& v : row) {
    h ^= v.Hash();
    h *= 0x100000001b3ull;
  }
  return h;
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].StructurallyEquals(b[i])) return false;
  }
  return true;
}

std::string RowToString(const Row& row) {
  std::string out = "[";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += "]";
  return out;
}

}  // namespace aggify
