#include "types/value.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <functional>

namespace aggify {

namespace {

constexpr int kDaysPerMonthNormal[] = {31, 28, 31, 30, 31, 30,
                                       31, 31, 30, 31, 30, 31};

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

int DaysInYear(int y) { return IsLeap(y) ? 366 : 365; }

int DaysInMonth(int y, int m) {
  if (m == 2 && IsLeap(y)) return 29;
  return kDaysPerMonthNormal[m - 1];
}

}  // namespace

Date MakeDate(int year, int month, int day) {
  int64_t days = 0;
  if (year >= 1970) {
    for (int y = 1970; y < year; ++y) days += DaysInYear(y);
  } else {
    for (int y = year; y < 1970; ++y) days -= DaysInYear(y);
  }
  for (int m = 1; m < month; ++m) days += DaysInMonth(year, m);
  days += day - 1;
  return Date{static_cast<int32_t>(days)};
}

Result<Date> DateFromString(const std::string& s) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d) != 3 || m < 1 || m > 12 ||
      d < 1 || d > 31) {
    return Status::ParseError("invalid date literal: '" + s + "'");
  }
  return MakeDate(y, m, d);
}

std::string DateToString(Date date) {
  int64_t days = date.days;
  int y = 1970;
  while (days < 0) {
    --y;
    days += DaysInYear(y);
  }
  while (days >= DaysInYear(y)) {
    days -= DaysInYear(y);
    ++y;
  }
  int m = 1;
  while (days >= DaysInMonth(y, m)) {
    days -= DaysInMonth(y, m);
    ++m;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m,
                static_cast<int>(days) + 1);
  return buf;
}

Result<Value> Value::CastTo(TypeId target) const {
  if (is_null() || type_id() == target) return *this;
  switch (target) {
    case TypeId::kBool:
      if (is_int()) return Value::Bool(int_value() != 0);
      break;
    case TypeId::kInt:
      if (is_double()) return Value::Int(static_cast<int64_t>(double_value()));
      if (is_bool()) return Value::Int(bool_value() ? 1 : 0);
      if (is_string()) {
        try {
          return Value::Int(std::stoll(string_value()));
        } catch (...) {
          return Status::TypeError("cannot cast '" + string_value() +
                                   "' to INT");
        }
      }
      break;
    case TypeId::kDouble:
      if (is_int()) return Value::Double(static_cast<double>(int_value()));
      if (is_string()) {
        try {
          return Value::Double(std::stod(string_value()));
        } catch (...) {
          return Status::TypeError("cannot cast '" + string_value() +
                                   "' to FLOAT");
        }
      }
      break;
    case TypeId::kString:
      return Value::String(ToString());
    case TypeId::kDate:
      if (is_string()) {
        ASSIGN_OR_RETURN(Date d, DateFromString(string_value()));
        return Value::FromDate(d);
      }
      if (is_int()) return Value::FromDate(Date{static_cast<int32_t>(int_value())});
      break;
    case TypeId::kRecord:
    case TypeId::kNull:
      break;
  }
  return Status::TypeError("cannot cast " + ToString() + " to type id " +
                           std::to_string(static_cast<int>(target)));
}

bool Value::StructurallyEquals(const Value& o) const {
  if (is_null() || o.is_null()) return is_null() && o.is_null();
  if (is_numeric() && o.is_numeric()) {
    if (is_int() && o.is_int()) return int_value() == o.int_value();
    return AsDouble() == o.AsDouble();
  }
  if (is_record() || o.is_record()) {
    if (!is_record() || !o.is_record()) return false;
    const auto& a = record_value();
    const auto& b = o.record_value();
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].StructurallyEquals(b[i])) return false;
    }
    return true;
  }
  return repr_ == o.repr_;
}

uint64_t Value::Hash() const {
  switch (repr_.index()) {
    case 0:
      return 0x6e756c6cull;
    case 1:
      return bool_value() ? 0x74727565ull : 0x66616c73ull;
    case 2:
      // Ints hash as their double image so 1 and 1.0 group together,
      // consistent with StructurallyEquals.
      return std::hash<double>{}(static_cast<double>(int_value()));
    case 3:
      return std::hash<double>{}(double_value());
    case 4:
      return std::hash<std::string>{}(string_value());
    case 5:
      return std::hash<int64_t>{}(date_value().days) * 0x9E3779B97F4A7C15ull;
    case 6: {
      uint64_t h = 0x7265636f72640aull;
      for (const Value& v : record_value()) {
        h ^= v.Hash();
        h *= 0x100000001b3ull;
      }
      return h;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (repr_.index()) {
    case 0:
      return "NULL";
    case 1:
      return bool_value() ? "true" : "false";
    case 2:
      return std::to_string(int_value());
    case 3: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.6g", double_value());
      return buf;
    }
    case 4:
      return string_value();
    case 5:
      return DateToString(date_value());
    case 6: {
      std::string out = "(";
      const auto& fields = record_value();
      for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out += ", ";
        out += fields[i].ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

namespace {

enum class NumKind { kNotNumeric, kInt, kDouble };

NumKind PromoteNumeric(const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) return NumKind::kNotNumeric;
  if (a.is_int() && b.is_int()) return NumKind::kInt;
  return NumKind::kDouble;
}

Status ArithTypeError(const char* op, const Value& a, const Value& b) {
  return Status::TypeError(std::string("operator ") + op +
                           " requires numeric operands, got " + a.ToString() +
                           " and " + b.ToString());
}

// Dialect INT arithmetic wraps in two's complement: overflow must be defined
// (and identical on the loop and rewritten sides of an Aggify rewrite), not
// left to signed-overflow UB.
int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}

int64_t WrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}

int64_t WrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}

}  // namespace

Result<Value> Add(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.is_string() && b.is_string()) return Concat(a, b);
  // date + int days
  if (a.is_date() && b.is_int()) {
    return Value::FromDate(
        Date{a.date_value().days + static_cast<int32_t>(b.int_value())});
  }
  switch (PromoteNumeric(a, b)) {
    case NumKind::kInt:
      return Value::Int(WrapAdd(a.int_value(), b.int_value()));
    case NumKind::kDouble:
      return Value::Double(a.AsDouble() + b.AsDouble());
    default:
      return ArithTypeError("+", a, b);
  }
}

Result<Value> Subtract(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.is_date() && b.is_int()) {
    return Value::FromDate(
        Date{a.date_value().days - static_cast<int32_t>(b.int_value())});
  }
  if (a.is_date() && b.is_date()) {
    return Value::Int(a.date_value().days - b.date_value().days);
  }
  switch (PromoteNumeric(a, b)) {
    case NumKind::kInt:
      return Value::Int(WrapSub(a.int_value(), b.int_value()));
    case NumKind::kDouble:
      return Value::Double(a.AsDouble() - b.AsDouble());
    default:
      return ArithTypeError("-", a, b);
  }
}

Result<Value> Multiply(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  switch (PromoteNumeric(a, b)) {
    case NumKind::kInt:
      return Value::Int(WrapMul(a.int_value(), b.int_value()));
    case NumKind::kDouble:
      return Value::Double(a.AsDouble() * b.AsDouble());
    default:
      return ArithTypeError("*", a, b);
  }
}

Result<Value> Divide(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) return ArithTypeError("/", a, b);
  if (b.AsDouble() == 0.0) {
    return Status::ExecutionError("division by zero");
  }
  if (a.is_int() && b.is_int()) {
    // INT64_MIN / -1 overflows (and traps on x86); it wraps to INT64_MIN.
    if (b.int_value() == -1) return Value::Int(WrapSub(0, a.int_value()));
    return Value::Int(a.int_value() / b.int_value());
  }
  return Value::Double(a.AsDouble() / b.AsDouble());
}

Result<Value> Modulo(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_int() || !b.is_int()) return ArithTypeError("%", a, b);
  if (b.int_value() == 0) return Status::ExecutionError("modulo by zero");
  // INT64_MIN % -1 traps on x86 even though the result is plainly 0.
  if (b.int_value() == -1) return Value::Int(0);
  return Value::Int(a.int_value() % b.int_value());
}

Result<Value> Negate(const Value& a) {
  if (a.is_null()) return Value::Null();
  if (a.is_int()) return Value::Int(WrapSub(0, a.int_value()));
  if (a.is_double()) return Value::Double(-a.double_value());
  return Status::TypeError("unary - requires numeric operand, got " +
                           a.ToString());
}

Result<Value> Compare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.is_numeric() && b.is_numeric()) {
    if (a.is_int() && b.is_int()) {
      auto c = a.int_value() <=> b.int_value();
      return Value::Int(c < 0 ? -1 : (c > 0 ? 1 : 0));
    }
    double x = a.AsDouble(), y = b.AsDouble();
    return Value::Int(x < y ? -1 : (x > y ? 1 : 0));
  }
  if (a.is_string() && b.is_string()) {
    int c = a.string_value().compare(b.string_value());
    return Value::Int(c < 0 ? -1 : (c > 0 ? 1 : 0));
  }
  if (a.is_date() && b.is_date()) {
    auto c = a.date_value().days <=> b.date_value().days;
    return Value::Int(c < 0 ? -1 : (c > 0 ? 1 : 0));
  }
  if (a.is_bool() && b.is_bool()) {
    return Value::Int(static_cast<int>(a.bool_value()) -
                      static_cast<int>(b.bool_value()));
  }
  // Permissive cross-type: string date vs date.
  if (a.is_string() && b.is_date()) {
    ASSIGN_OR_RETURN(Value ad, a.CastTo(TypeId::kDate));
    return Compare(ad, b);
  }
  if (a.is_date() && b.is_string()) {
    ASSIGN_OR_RETURN(Value bd, b.CastTo(TypeId::kDate));
    return Compare(a, bd);
  }
  return Status::TypeError("cannot compare " + a.ToString() + " with " +
                           b.ToString());
}

namespace {
template <typename Pred>
Result<Value> ComparePred(const Value& a, const Value& b, Pred pred) {
  ASSIGN_OR_RETURN(Value c, Compare(a, b));
  if (c.is_null()) return Value::Null();
  return Value::Bool(pred(c.int_value()));
}
}  // namespace

Result<Value> Eq(const Value& a, const Value& b) {
  return ComparePred(a, b, [](int64_t c) { return c == 0; });
}
Result<Value> Ne(const Value& a, const Value& b) {
  return ComparePred(a, b, [](int64_t c) { return c != 0; });
}
Result<Value> Lt(const Value& a, const Value& b) {
  return ComparePred(a, b, [](int64_t c) { return c < 0; });
}
Result<Value> Le(const Value& a, const Value& b) {
  return ComparePred(a, b, [](int64_t c) { return c <= 0; });
}
Result<Value> Gt(const Value& a, const Value& b) {
  return ComparePred(a, b, [](int64_t c) { return c > 0; });
}
Result<Value> Ge(const Value& a, const Value& b) {
  return ComparePred(a, b, [](int64_t c) { return c >= 0; });
}

namespace {
// Truth extraction: bool passes through; numeric nonzero is true (the
// dialect allows `IF (@x)` with int flags). NULL stays unknown.
Result<Value> AsKleene(const Value& v) {
  if (v.is_null()) return Value::Null();
  if (v.is_bool()) return v;
  if (v.is_numeric()) return Value::Bool(v.AsDouble() != 0.0);
  return Status::TypeError("expected boolean, got " + v.ToString());
}
}  // namespace

Result<Value> And(const Value& a, const Value& b) {
  ASSIGN_OR_RETURN(Value x, AsKleene(a));
  ASSIGN_OR_RETURN(Value y, AsKleene(b));
  if (!x.is_null() && !x.bool_value()) return Value::Bool(false);
  if (!y.is_null() && !y.bool_value()) return Value::Bool(false);
  if (x.is_null() || y.is_null()) return Value::Null();
  return Value::Bool(true);
}

Result<Value> Or(const Value& a, const Value& b) {
  ASSIGN_OR_RETURN(Value x, AsKleene(a));
  ASSIGN_OR_RETURN(Value y, AsKleene(b));
  if (!x.is_null() && x.bool_value()) return Value::Bool(true);
  if (!y.is_null() && y.bool_value()) return Value::Bool(true);
  if (x.is_null() || y.is_null()) return Value::Null();
  return Value::Bool(false);
}

Result<Value> Not(const Value& a) {
  ASSIGN_OR_RETURN(Value x, AsKleene(a));
  if (x.is_null()) return Value::Null();
  return Value::Bool(!x.bool_value());
}

Result<Value> Concat(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  ASSIGN_OR_RETURN(Value x, a.CastTo(TypeId::kString));
  ASSIGN_OR_RETURN(Value y, b.CastTo(TypeId::kString));
  return Value::String(x.string_value() + y.string_value());
}

int TotalOrderCompare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    if (a.is_null() && b.is_null()) return 0;
    return a.is_null() ? -1 : 1;
  }
  auto r = Compare(a, b);
  if (r.ok() && !r->is_null()) return static_cast<int>(r->int_value());
  // Cross-type fallback: order by TypeId.
  int ta = static_cast<int>(a.type_id());
  int tb = static_cast<int>(b.type_id());
  return ta < tb ? -1 : (ta > tb ? 1 : 0);
}

}  // namespace aggify
