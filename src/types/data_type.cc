#include "types/data_type.h"

#include "common/string_util.h"

namespace aggify {

std::string DataType::ToString() const {
  switch (id) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return "BOOL";
    case TypeId::kInt:
      return "INT";
    case TypeId::kDouble:
      if (width > 0) {
        return "DECIMAL(" + std::to_string(width) + "," +
               std::to_string(scale) + ")";
      }
      return "FLOAT";
    case TypeId::kString:
      if (width > 0) return "CHAR(" + std::to_string(width) + ")";
      return "VARCHAR";
    case TypeId::kDate:
      return "DATE";
    case TypeId::kRecord:
      return "RECORD";
  }
  return "?";
}

int32_t DataType::WireSize() const {
  switch (id) {
    case TypeId::kNull:
      return 1;
    case TypeId::kBool:
      return 1;
    case TypeId::kInt:
      return 4;
    case TypeId::kDouble:
      // DECIMAL(p,s) ships as 9 bytes like the paper assumes; FLOAT as 8.
      return width > 0 ? 9 : 8;
    case TypeId::kString:
      return width > 0 ? width : 16;
    case TypeId::kDate:
      return 3;
    case TypeId::kRecord:
      return 16;
  }
  return 8;
}

Result<DataType> DataTypeFromName(const std::string& name, int32_t width,
                                  int32_t scale) {
  std::string n = ToLower(name);
  if (n == "int" || n == "integer" || n == "bigint" || n == "smallint" ||
      n == "tinyint") {
    return DataType::Int();
  }
  if (n == "bool" || n == "boolean" || n == "bit") return DataType::Bool();
  if (n == "float" || n == "double" || n == "real") return DataType::Double();
  if (n == "decimal" || n == "numeric" || n == "money") {
    return DataType::Decimal(width > 0 ? width : 18, scale);
  }
  if (n == "char" || n == "varchar" || n == "nchar" || n == "nvarchar" ||
      n == "text" || n == "string") {
    return DataType::String(width);
  }
  if (n == "date" || n == "datetime") return DataType::Date();
  return Status::ParseError("unknown type name: " + name);
}

}  // namespace aggify
