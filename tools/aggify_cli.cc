// aggify_cli — the "external tool" packaging of Aggify (§9: "the techniques
// described in this paper can be implemented either inside a DBMS or as an
// external tool").
//
// Reads a dialect script (CREATE TABLE / CREATE INDEX / INSERT / CREATE
// FUNCTION ...), applies Algorithm 1 to every function, and emits the
// rewritten functions together with the synthesized aggregate definitions.
//
// Usage:
//   aggify_cli [options] <script.sql>
//     --check-only    report applicability per loop, don't print rewrites
//     --for-loops     also convert FOR loops (§8.1) before rewriting
//     --keep-dead     keep declarations the rewrite rendered dead (§6.2)
//     --sets          print the Eq. 1-4 analysis sets per loop
//     --dop=N         plan rewritten queries with N-way parallelism
//     --explain       print the physical plan of each rewritten query
//                     (with --dop=N, parallel fragments show up as
//                     Gather(dop=N) over ParallelPartialAgg)
//   reads stdin when <script.sql> is '-'.
//
//   aggify_cli --lint [--format=json|text] [--werror] <path | workloads-corpus>...
//     clang-tidy-style diagnostics over dialect scripts: every skipped loop
//     is reported with its stable AGG1xx code, every proved fact (rewrite,
//     sort elision, derived Merge) as an AGG2xx note, and the
//     simplification pipeline's findings as AGG3xx (dead stores, unused
//     fetch columns, constant branches; native-fold lowering and static
//     trip counts as notes). Paths may be .sql files or directories
//     (scanned recursively); the literal keyword `workloads-corpus` lints
//     the bundled Table-1 corpora. `--format=json` emits one machine-
//     readable document on stdout (CI consumes it for annotations). Exit
//     status is 1 iff any error-severity diagnostic was emitted —
//     `--werror` promotes warnings into that failure condition too.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "aggify/rewriter.h"
#include "procedural/session.h"
#include "workloads/corpus.h"

using namespace aggify;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "aggify_cli: %s\n", message.c_str());
  return 1;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out.empty() ? "{}" : "{" + out + "}";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct LintTally {
  int errors = 0;
  int warnings = 0;
  int notes = 0;
  bool json = false;
  std::vector<Diagnostic> collected;

  void Emit(const Diagnostic& d) {
    switch (d.severity) {
      case DiagSeverity::kError: ++errors; break;
      case DiagSeverity::kWarning: ++warnings; break;
      case DiagSeverity::kNote: ++notes; break;
    }
    if (json) {
      collected.push_back(d);
    } else {
      std::printf("%s\n", d.ToString().c_str());
    }
  }

  /// One machine-readable document on stdout:
  /// {"diagnostics": [{code, slug, severity, loc, offset, message,
  ///  fixit}...], "errors": E, "warnings": W, "notes": N}
  void PrintJson() const {
    std::printf("{\n  \"diagnostics\": [");
    for (size_t i = 0; i < collected.size(); ++i) {
      const Diagnostic& d = collected[i];
      std::printf(
          "%s\n    {\"code\": \"%s\", \"slug\": \"aggify-%s\", "
          "\"severity\": \"%s\", \"loc\": \"%s\", \"offset\": %zu, "
          "\"message\": \"%s\", \"fixit\": \"%s\"}",
          i > 0 ? "," : "", DiagCodeName(d.code).c_str(),
          DiagCodeSlug(d.code), SeverityName(d.severity),
          JsonEscape(d.loc).c_str(), d.offset,
          JsonEscape(d.message).c_str(), JsonEscape(d.fixit).c_str());
    }
    std::printf("\n  ],\n  \"errors\": %d,\n  \"warnings\": %d,\n  "
                "\"notes\": %d\n}\n",
                errors, warnings, notes);
  }
};

/// Lints one dialect script: loads it into a scratch database, rewrites
/// every registered function and reports each diagnostic against `label`.
/// Every violation of every skipped loop is reported (the full
/// skip_details list, not just the primary rejection), and the script's
/// diagnostics are emitted in source order — (file, byte offset, code) —
/// rather than the rewriter's discovery order, so output is reproducible
/// for CI annotations.
void LintScript(const std::string& label, const std::string& source,
                LintTally* tally) {
  Database db;
  Session session(&db);
  auto load = session.RunSql(source);
  if (!load.ok()) {
    tally->Emit(MakeDiagnostic(DiagCode::kScriptError, label,
                               "script failed to load: " +
                                   load.status().ToString()));
    return;
  }
  Aggify aggify(&db);
  std::vector<Diagnostic> script_diags;
  for (const std::string& name : db.catalog().FunctionNames()) {
    auto report = aggify.RewriteFunction(name);
    if (!report.ok()) {
      script_diags.push_back(
          MakeDiagnostic(DiagCode::kScriptError, label + ":" + name,
                         report.status().ToString()));
      continue;
    }
    for (const auto& detail : report->skip_details) {
      for (Diagnostic d : detail) {
        d.loc = label + ":" + d.loc;
        script_diags.push_back(std::move(d));
      }
    }
    for (Diagnostic d : report->notes) {
      d.loc = label + ":" + d.loc;
      script_diags.push_back(std::move(d));
    }
  }
  SortDiagnosticsBySource(&script_diags);
  for (const Diagnostic& d : script_diags) tally->Emit(d);
}

struct LintOptions {
  bool json = false;    ///< --format=json: one JSON document on stdout
  bool werror = false;  ///< --werror: warnings also fail the lint (exit 1)
};

int RunLint(const std::vector<std::string>& targets,
            const LintOptions& options) {
  LintTally tally;
  tally.json = options.json;
  for (const std::string& target : targets) {
    if (target == "workloads-corpus") {
      for (const Corpus& corpus : ApplicabilityCorpora()) {
        auto stats = AnalyzeCorpus(corpus);
        if (!stats.ok()) {
          tally.Emit(MakeDiagnostic(DiagCode::kScriptError, corpus.name,
                                    stats.status().ToString()));
          continue;
        }
        for (const Diagnostic& d : stats->diagnostics) tally.Emit(d);
      }
      continue;
    }
    std::error_code ec;
    std::vector<std::filesystem::path> files;
    if (std::filesystem::is_directory(target, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(target, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".sql") {
          files.push_back(entry.path());
        }
      }
      std::sort(files.begin(), files.end());
    } else {
      files.emplace_back(target);
    }
    for (const auto& file : files) {
      std::ifstream in(file);
      if (!in) {
        tally.Emit(MakeDiagnostic(DiagCode::kScriptError, file.string(),
                                  "cannot open file"));
        continue;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      LintScript(file.string(), buffer.str(), &tally);
    }
  }
  if (tally.json) tally.PrintJson();
  std::fprintf(stderr, "aggify_cli: lint: %d error(s), %d warning(s), %d note(s)\n",
               tally.errors, tally.warnings, tally.notes);
  if (tally.errors > 0) return 1;
  if (options.werror && tally.warnings > 0) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_only = false;
  bool for_loops = false;
  bool keep_dead = false;
  bool print_sets = false;
  bool explain = false;
  bool print_stats = false;
  int dop = 1;
  int64_t timeout_ms = 0;
  int64_t memory_limit_bytes = 0;
  bool lint = false;
  LintOptions lint_options;
  std::vector<std::string> targets;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-only") == 0) {
      check_only = true;
    } else if (std::strcmp(argv[i], "--for-loops") == 0) {
      for_loops = true;
    } else if (std::strcmp(argv[i], "--keep-dead") == 0) {
      keep_dead = true;
    } else if (std::strcmp(argv[i], "--sets") == 0) {
      print_sets = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strncmp(argv[i], "--dop=", 6) == 0) {
      dop = std::atoi(argv[i] + 6);
      if (dop < 1) return Fail("--dop needs a positive integer");
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      print_stats = true;
    } else if (std::strncmp(argv[i], "--timeout-ms=", 13) == 0) {
      timeout_ms = std::atoll(argv[i] + 13);
      if (timeout_ms < 0) return Fail("--timeout-ms needs a non-negative integer");
    } else if (std::strncmp(argv[i], "--memory-limit-bytes=", 21) == 0) {
      memory_limit_bytes = std::atoll(argv[i] + 21);
      if (memory_limit_bytes < 0) {
        return Fail("--memory-limit-bytes needs a non-negative integer");
      }
    } else if (std::strcmp(argv[i], "--lint") == 0) {
      lint = true;
    } else if (std::strcmp(argv[i], "--format=json") == 0) {
      lint_options.json = true;
    } else if (std::strcmp(argv[i], "--format=text") == 0) {
      lint_options.json = false;
    } else if (std::strcmp(argv[i], "--werror") == 0) {
      lint_options.werror = true;
    } else if (argv[i][0] == '-' && std::strcmp(argv[i], "-") != 0) {
      return Fail(std::string("unknown option ") + argv[i] +
                  "\nusage: aggify_cli [--check-only] [--for-loops] "
                  "[--keep-dead] [--sets] [--dop=N] [--explain] [--stats] "
                  "[--timeout-ms=N] [--memory-limit-bytes=N] "
                  "<script.sql | ->\n"
                  "       aggify_cli --lint [--format=json|text] [--werror] "
                  "<path | workloads-corpus>...");
    } else {
      path = argv[i];
      targets.emplace_back(argv[i]);
    }
  }
  if (lint) {
    if (targets.empty()) {
      return Fail("--lint needs at least one path or 'workloads-corpus'");
    }
    return RunLint(targets, lint_options);
  }
  if (path == nullptr) {
    return Fail("no input script (use '-' for stdin)");
  }

  std::string source;
  if (std::strcmp(path, "-") == 0) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  } else {
    std::ifstream file(path);
    if (!file) return Fail(std::string("cannot open ") + path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
  }

  EngineOptions options;
  options.rewrite.convert_for_loops = for_loops;
  options.rewrite.remove_dead_declarations = !keep_dead;
  options.execution.degree_of_parallelism = dop;
  options.limits.timeout_ms = timeout_ms;
  options.limits.memory_limit_bytes = memory_limit_bytes;

  Database db;
  Session session(&db, options);
  auto load = session.RunSql(source);
  if (!load.ok()) {
    return Fail("script failed to load: " + load.status().ToString());
  }

  Aggify aggify(&db, options);

  int total_loops = 0;
  int total_rewritten = 0;
  for (const std::string& name : db.catalog().FunctionNames()) {
    auto report = aggify.RewriteFunction(name);
    if (!report.ok()) {
      return Fail("rewriting " + name + ": " + report.status().ToString());
    }
    total_loops += report->loops_found;
    total_rewritten += report->loops_rewritten;
    if (report->loops_found == 0) continue;

    std::printf("-- function %s: %d cursor loop(s), %d rewritten\n",
                name.c_str(), report->loops_found, report->loops_rewritten);
    for (const Diagnostic& d : report->skipped) {
      std::printf("--   skipped [%s]: %s\n", DiagCodeName(d.code).c_str(),
                  d.message.c_str());
    }
    for (const Diagnostic& d : report->notes) {
      std::printf("--   note [%s]: %s\n", DiagCodeName(d.code).c_str(),
                  d.message.c_str());
    }
    if (check_only) continue;

    for (const auto& rewrite : report->rewrites) {
      if (print_sets) {
        std::printf("--   V_fetch  = %s\n",
                    JoinNames(rewrite.sets.v_fetch).c_str());
        std::printf("--   V_F      = %s (+ isInitialized)\n",
                    JoinNames(rewrite.sets.v_fields).c_str());
        std::printf("--   P_accum  = %s\n",
                    JoinNames(rewrite.sets.p_accum).c_str());
        std::printf("--   V_init   = %s\n",
                    JoinNames(rewrite.sets.v_init).c_str());
        std::printf("--   V_term   = %s%s\n",
                    JoinNames(rewrite.sets.v_term).c_str(),
                    rewrite.sets.ordered ? "  [ORDER BY: Eq. 6 streaming]"
                                         : "");
      }
      if (explain && !rewrite.rewritten_query_sql.empty()) {
        auto stmt = ParseSelect(rewrite.rewritten_query_sql);
        if (stmt.ok()) {
          ExecContext ctx = session.MakeContext();
          auto tree = session.engine().Explain(**stmt, ctx);
          if (tree.ok()) {
            std::printf("--   plan for %s:\n", rewrite.aggregate_name.c_str());
            std::istringstream lines(*tree);
            std::string line;
            while (std::getline(lines, line)) {
              std::printf("--     %s\n", line.c_str());
            }
          } else {
            std::printf("--   plan unavailable: %s\n",
                        tree.status().ToString().c_str());
          }
        }
        if (rewrite.merge_synthesized) {
          std::printf("--   merge synthesized (homomorphism calculus):\n");
          for (const std::string& rule : rewrite.merge_rules) {
            std::printf("--     %s\n", rule.c_str());
          }
          std::printf("--   %s\n", rewrite.merge_certificate.c_str());
        } else if (!rewrite.merge_rules.empty()) {
          std::printf("--   merge rules (fold algebra):\n");
          for (const std::string& rule : rewrite.merge_rules) {
            std::printf("--     %s\n", rule.c_str());
          }
        }
      }
      std::printf("\n%s\n", rewrite.aggregate_source.c_str());
    }
    auto def = db.catalog().GetFunction(name);
    if (def.ok()) {
      std::printf("%s\n", (*def)->ToString().c_str());
    }
  }
  std::fprintf(stderr, "aggify_cli: %d loop(s) found, %d rewritten\n",
               total_loops, total_rewritten);
  if (print_stats) {
    std::fprintf(stderr, "aggify_cli: robustness: %s\n",
                 db.robustness().ToString().c_str());
  }
  return total_loops == total_rewritten ? 0 : 2;
}
