// aggify_cli — the "external tool" packaging of Aggify (§9: "the techniques
// described in this paper can be implemented either inside a DBMS or as an
// external tool").
//
// Subcommands (one shared option parser; `aggify_cli <subcommand> --help`
// lists what each accepts):
//
//   aggify_cli run [options] <script.sql | ->
//     Reads a dialect script (CREATE TABLE / CREATE INDEX / INSERT /
//     CREATE FUNCTION ...), applies Algorithm 1 to every function, and
//     emits the rewritten functions with the synthesized aggregates.
//       --check-only    report applicability per loop, don't print rewrites
//       --for-loops     also convert FOR loops (§8.1) before rewriting
//       --keep-dead     keep declarations the rewrite rendered dead (§6.2)
//       --sets          print the Eq. 1-4 analysis sets per loop
//       --dop=N         plan rewritten queries with N-way parallelism
//       --explain       print the physical plan of each rewritten query
//       --stats         append the engine stats snapshot (same struct the
//                       server's STATS command renders; --format picks
//                       text or json)
//
//   aggify_cli lint [--format=json|text] [--werror] <path | workloads-corpus>...
//     clang-tidy-style diagnostics over dialect scripts: every skipped loop
//     is reported with its stable AGG1xx code, every proved fact (rewrite,
//     sort elision, derived Merge) as an AGG2xx note, and the
//     simplification pipeline's findings as AGG3xx. Exit status is 1 iff
//     any error-severity diagnostic was emitted — `--werror` promotes
//     warnings into that failure condition too.
//
//   aggify_cli serve [options] <script.sql>
//     Bootstraps an EngineService from the script, then speaks the server
//     protocol (docs/SERVER.md: OPEN/QUERY/DECLARE/FETCH/CLOSE/STATS) over
//     stdin/stdout, one request per line, until EOF or QUIT.
//       --dop=N --timeout-ms=N --memory-limit-bytes=N   session defaults
//       --max-sessions=N --max-cursors=N                capacity bounds
//       --session-ttl-ms=N --cursor-ttl-ms=N            idle eviction
//       --fetch-rows=N                                  default FETCH size
//
//   aggify_cli stats [--format=json|text] <script.sql | ->
//     Loads and runs a script, then renders the engine stats snapshot —
//     the same ServerStatsSnapshot the server's STATS command returns, so
//     the offline and serving surfaces cannot drift apart.
//
// Legacy spellings remain: no subcommand means `run`, and `--lint` selects
// the lint subcommand (CI invokes that form).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "aggify/rewriter.h"
#include "procedural/session.h"
#include "server/server.h"
#include "workloads/corpus.h"

using namespace aggify;

namespace {

constexpr const char* kUsage =
    "usage: aggify_cli [run] [--check-only] [--for-loops] [--keep-dead] "
    "[--sets] [--dop=N] [--explain] [--stats] [--format=json|text] "
    "[--timeout-ms=N] [--memory-limit-bytes=N] <script.sql | ->\n"
    "       aggify_cli lint [--format=json|text] [--werror] "
    "<path | workloads-corpus>...   (legacy: aggify_cli --lint ...)\n"
    "       aggify_cli serve [--dop=N] [--timeout-ms=N] "
    "[--memory-limit-bytes=N] [--max-sessions=N] [--max-cursors=N] "
    "[--session-ttl-ms=N] [--cursor-ttl-ms=N] [--fetch-rows=N] <script.sql>\n"
    "       aggify_cli stats [--format=json|text] <script.sql | ->";

int Fail(const std::string& message) {
  std::fprintf(stderr, "aggify_cli: %s\n", message.c_str());
  return 1;
}

/// Every option of every subcommand, parsed by the one shared parser.
/// Subcommands read the fields they care about and ignore the rest.
struct CliOptions {
  // run
  bool check_only = false;
  bool for_loops = false;
  bool keep_dead = false;
  bool print_sets = false;
  bool explain = false;
  bool print_stats = false;
  // run + serve: engine configuration
  int dop = 1;
  int64_t timeout_ms = 0;
  int64_t memory_limit_bytes = 0;
  // lint + stats + run --stats: output form
  bool json = false;
  bool werror = false;
  bool lint = false;  ///< legacy --lint flag selects the lint subcommand
  // serve
  int max_sessions = 256;
  int max_cursors = 64;
  int64_t session_ttl_ms = 60'000;
  int64_t cursor_ttl_ms = 30'000;
  int64_t fetch_rows = 16;

  EngineOptions ToEngineOptions() const {
    EngineOptions options;
    options.rewrite.convert_for_loops = for_loops;
    options.rewrite.remove_dead_declarations = !keep_dead;
    options.execution.degree_of_parallelism = dop;
    options.limits.timeout_ms = timeout_ms;
    options.limits.memory_limit_bytes = memory_limit_bytes;
    return options;
  }
};

/// Parses one "--name" / "--name=value" option into `opts`. Returns OK,
/// or an error naming the bad option/value. Shared by all subcommands so a
/// flag never means two things.
Status ParseOption(const char* arg, CliOptions* opts) {
  auto int_value = [&](const char* prefix, int64_t min, int64_t* out) {
    const char* v = arg + std::strlen(prefix);
    int64_t parsed = std::atoll(v);
    if (parsed < min || (*v == '\0')) {
      return Status::InvalidArgument(std::string(prefix) +
                                     " needs an integer >= " +
                                     std::to_string(min));
    }
    *out = parsed;
    return Status::OK();
  };

  if (std::strcmp(arg, "--check-only") == 0) {
    opts->check_only = true;
  } else if (std::strcmp(arg, "--for-loops") == 0) {
    opts->for_loops = true;
  } else if (std::strcmp(arg, "--keep-dead") == 0) {
    opts->keep_dead = true;
  } else if (std::strcmp(arg, "--sets") == 0) {
    opts->print_sets = true;
  } else if (std::strcmp(arg, "--explain") == 0) {
    opts->explain = true;
  } else if (std::strcmp(arg, "--stats") == 0) {
    opts->print_stats = true;
  } else if (std::strcmp(arg, "--lint") == 0) {
    opts->lint = true;
  } else if (std::strcmp(arg, "--werror") == 0) {
    opts->werror = true;
  } else if (std::strcmp(arg, "--format=json") == 0) {
    opts->json = true;
  } else if (std::strcmp(arg, "--format=text") == 0) {
    opts->json = false;
  } else if (std::strncmp(arg, "--dop=", 6) == 0) {
    int64_t v = 0;
    RETURN_NOT_OK(int_value("--dop=", 1, &v));
    opts->dop = static_cast<int>(v);
  } else if (std::strncmp(arg, "--timeout-ms=", 13) == 0) {
    RETURN_NOT_OK(int_value("--timeout-ms=", 0, &opts->timeout_ms));
  } else if (std::strncmp(arg, "--memory-limit-bytes=", 21) == 0) {
    RETURN_NOT_OK(
        int_value("--memory-limit-bytes=", 0, &opts->memory_limit_bytes));
  } else if (std::strncmp(arg, "--max-sessions=", 15) == 0) {
    int64_t v = 0;
    RETURN_NOT_OK(int_value("--max-sessions=", 1, &v));
    opts->max_sessions = static_cast<int>(v);
  } else if (std::strncmp(arg, "--max-cursors=", 14) == 0) {
    int64_t v = 0;
    RETURN_NOT_OK(int_value("--max-cursors=", 1, &v));
    opts->max_cursors = static_cast<int>(v);
  } else if (std::strncmp(arg, "--session-ttl-ms=", 17) == 0) {
    RETURN_NOT_OK(int_value("--session-ttl-ms=", 0, &opts->session_ttl_ms));
  } else if (std::strncmp(arg, "--cursor-ttl-ms=", 16) == 0) {
    RETURN_NOT_OK(int_value("--cursor-ttl-ms=", 0, &opts->cursor_ttl_ms));
  } else if (std::strncmp(arg, "--fetch-rows=", 13) == 0) {
    RETURN_NOT_OK(int_value("--fetch-rows=", 1, &opts->fetch_rows));
  } else {
    return Status::InvalidArgument(std::string("unknown option ") + arg +
                                   "\n" + kUsage);
  }
  return Status::OK();
}

Result<std::string> ReadSource(const std::string& path) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out.empty() ? "{}" : "{" + out + "}";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The engine-side counters as the shared snapshot — identical struct and
/// renderers as the server's STATS command (server_stats.h), with no
/// session/cursor section when no server is attached.
void PrintStatsSnapshot(const Database& db, const QueryEngine& engine,
                        const Server* server, bool json) {
  ServerStatsSnapshot snapshot =
      server != nullptr
          ? server->Stats()
          : SnapshotServerStats(db.robustness(), engine.plan_cache(), nullptr,
                                nullptr);
  std::string rendered =
      json ? RenderStatsJson(snapshot) + "\n" : RenderStatsText(snapshot);
  std::fputs(rendered.c_str(), stdout);
}

struct LintTally {
  int errors = 0;
  int warnings = 0;
  int notes = 0;
  bool json = false;
  std::vector<Diagnostic> collected;

  void Emit(const Diagnostic& d) {
    switch (d.severity) {
      case DiagSeverity::kError: ++errors; break;
      case DiagSeverity::kWarning: ++warnings; break;
      case DiagSeverity::kNote: ++notes; break;
    }
    if (json) {
      collected.push_back(d);
    } else {
      std::printf("%s\n", d.ToString().c_str());
    }
  }

  /// One machine-readable document on stdout:
  /// {"diagnostics": [{code, slug, severity, loc, offset, message,
  ///  fixit}...], "errors": E, "warnings": W, "notes": N}
  void PrintJson() const {
    std::printf("{\n  \"diagnostics\": [");
    for (size_t i = 0; i < collected.size(); ++i) {
      const Diagnostic& d = collected[i];
      std::printf(
          "%s\n    {\"code\": \"%s\", \"slug\": \"aggify-%s\", "
          "\"severity\": \"%s\", \"loc\": \"%s\", \"offset\": %zu, "
          "\"message\": \"%s\", \"fixit\": \"%s\"}",
          i > 0 ? "," : "", DiagCodeName(d.code).c_str(),
          DiagCodeSlug(d.code), SeverityName(d.severity),
          JsonEscape(d.loc).c_str(), d.offset,
          JsonEscape(d.message).c_str(), JsonEscape(d.fixit).c_str());
    }
    std::printf("\n  ],\n  \"errors\": %d,\n  \"warnings\": %d,\n  "
                "\"notes\": %d\n}\n",
                errors, warnings, notes);
  }
};

/// Lints one dialect script: loads it into a scratch database, rewrites
/// every registered function and reports each diagnostic against `label`.
/// Every violation of every skipped loop is reported (the full
/// skip_details list, not just the primary rejection), and the script's
/// diagnostics are emitted in source order — (file, byte offset, code) —
/// rather than the rewriter's discovery order, so output is reproducible
/// for CI annotations.
void LintScript(const std::string& label, const std::string& source,
                LintTally* tally) {
  Database db;
  Session session(&db);
  auto load = session.RunSql(source);
  if (!load.ok()) {
    tally->Emit(MakeDiagnostic(DiagCode::kScriptError, label,
                               "script failed to load: " +
                                   load.status().ToString()));
    return;
  }
  Aggify aggify(&db);
  std::vector<Diagnostic> script_diags;
  for (const std::string& name : db.catalog().FunctionNames()) {
    auto report = aggify.RewriteFunction(name);
    if (!report.ok()) {
      script_diags.push_back(
          MakeDiagnostic(DiagCode::kScriptError, label + ":" + name,
                         report.status().ToString()));
      continue;
    }
    for (const auto& detail : report->skip_details) {
      for (Diagnostic d : detail) {
        d.loc = label + ":" + d.loc;
        script_diags.push_back(std::move(d));
      }
    }
    for (Diagnostic d : report->notes) {
      d.loc = label + ":" + d.loc;
      script_diags.push_back(std::move(d));
    }
  }
  SortDiagnosticsBySource(&script_diags);
  for (const Diagnostic& d : script_diags) tally->Emit(d);
}

int RunLint(const std::vector<std::string>& targets, const CliOptions& opts) {
  if (targets.empty()) {
    return Fail("lint needs at least one path or 'workloads-corpus'");
  }
  LintTally tally;
  tally.json = opts.json;
  for (const std::string& target : targets) {
    if (target == "workloads-corpus") {
      for (const Corpus& corpus : ApplicabilityCorpora()) {
        auto stats = AnalyzeCorpus(corpus);
        if (!stats.ok()) {
          tally.Emit(MakeDiagnostic(DiagCode::kScriptError, corpus.name,
                                    stats.status().ToString()));
          continue;
        }
        for (const Diagnostic& d : stats->diagnostics) tally.Emit(d);
      }
      continue;
    }
    std::error_code ec;
    std::vector<std::filesystem::path> files;
    if (std::filesystem::is_directory(target, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(target, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".sql") {
          files.push_back(entry.path());
        }
      }
      std::sort(files.begin(), files.end());
    } else {
      files.emplace_back(target);
    }
    for (const auto& file : files) {
      std::ifstream in(file);
      if (!in) {
        tally.Emit(MakeDiagnostic(DiagCode::kScriptError, file.string(),
                                  "cannot open file"));
        continue;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      LintScript(file.string(), buffer.str(), &tally);
    }
  }
  if (tally.json) tally.PrintJson();
  std::fprintf(stderr,
               "aggify_cli: lint: %d error(s), %d warning(s), %d note(s)\n",
               tally.errors, tally.warnings, tally.notes);
  if (tally.errors > 0) return 1;
  if (opts.werror && tally.warnings > 0) return 1;
  return 0;
}

int RunRewrite(const std::vector<std::string>& targets,
               const CliOptions& opts) {
  if (targets.size() != 1) {
    return Fail(std::string("run needs exactly one input script") +
                (targets.empty() ? " (use '-' for stdin)" : ""));
  }
  auto source = ReadSource(targets[0]);
  if (!source.ok()) return Fail(source.status().message());

  EngineOptions options = opts.ToEngineOptions();
  Database db;
  Session session(&db, options);
  auto load = session.RunSql(*source);
  if (!load.ok()) {
    return Fail("script failed to load: " + load.status().ToString());
  }

  Aggify aggify(&db, options);

  int total_loops = 0;
  int total_rewritten = 0;
  for (const std::string& name : db.catalog().FunctionNames()) {
    auto report = aggify.RewriteFunction(name);
    if (!report.ok()) {
      return Fail("rewriting " + name + ": " + report.status().ToString());
    }
    total_loops += report->loops_found;
    total_rewritten += report->loops_rewritten;
    if (report->loops_found == 0) continue;

    std::printf("-- function %s: %d cursor loop(s), %d rewritten\n",
                name.c_str(), report->loops_found, report->loops_rewritten);
    for (const Diagnostic& d : report->skipped) {
      std::printf("--   skipped [%s]: %s\n", DiagCodeName(d.code).c_str(),
                  d.message.c_str());
    }
    for (const Diagnostic& d : report->notes) {
      std::printf("--   note [%s]: %s\n", DiagCodeName(d.code).c_str(),
                  d.message.c_str());
    }
    if (opts.check_only) continue;

    for (const auto& rewrite : report->rewrites) {
      if (opts.print_sets) {
        std::printf("--   V_fetch  = %s\n",
                    JoinNames(rewrite.sets.v_fetch).c_str());
        std::printf("--   V_F      = %s (+ isInitialized)\n",
                    JoinNames(rewrite.sets.v_fields).c_str());
        std::printf("--   P_accum  = %s\n",
                    JoinNames(rewrite.sets.p_accum).c_str());
        std::printf("--   V_init   = %s\n",
                    JoinNames(rewrite.sets.v_init).c_str());
        std::printf("--   V_term   = %s%s\n",
                    JoinNames(rewrite.sets.v_term).c_str(),
                    rewrite.sets.ordered ? "  [ORDER BY: Eq. 6 streaming]"
                                         : "");
      }
      if (opts.explain && !rewrite.rewritten_query_sql.empty()) {
        auto stmt = ParseSelect(rewrite.rewritten_query_sql);
        if (stmt.ok()) {
          ExecContext ctx = session.MakeContext();
          auto tree = session.engine().Explain(**stmt, ctx);
          if (tree.ok()) {
            std::printf("--   plan for %s:\n", rewrite.aggregate_name.c_str());
            std::istringstream lines(*tree);
            std::string line;
            while (std::getline(lines, line)) {
              std::printf("--     %s\n", line.c_str());
            }
          } else {
            std::printf("--   plan unavailable: %s\n",
                        tree.status().ToString().c_str());
          }
        }
        if (rewrite.merge_synthesized) {
          std::printf("--   merge synthesized (homomorphism calculus):\n");
          for (const std::string& rule : rewrite.merge_rules) {
            std::printf("--     %s\n", rule.c_str());
          }
          std::printf("--   %s\n", rewrite.merge_certificate.c_str());
        } else if (!rewrite.merge_rules.empty()) {
          std::printf("--   merge rules (fold algebra):\n");
          for (const std::string& rule : rewrite.merge_rules) {
            std::printf("--     %s\n", rule.c_str());
          }
        }
      }
      std::printf("\n%s\n", rewrite.aggregate_source.c_str());
    }
    auto def = db.catalog().GetFunction(name);
    if (def.ok()) {
      std::printf("%s\n", (*def)->ToString().c_str());
    }
  }
  std::fprintf(stderr, "aggify_cli: %d loop(s) found, %d rewritten\n",
               total_loops, total_rewritten);
  if (opts.print_stats) {
    PrintStatsSnapshot(db, session.engine(), nullptr, opts.json);
  }
  return total_loops == total_rewritten ? 0 : 2;
}

int RunServe(const std::vector<std::string>& targets, const CliOptions& opts) {
  if (targets.size() != 1 || targets[0] == "-") {
    return Fail("serve needs one script file (stdin carries the protocol)");
  }
  auto source = ReadSource(targets[0]);
  if (!source.ok()) return Fail(source.status().message());

  Database db;
  EngineService service(&db, opts.ToEngineOptions());
  auto load = service.RunSql(*source);
  if (!load.ok()) {
    return Fail("bootstrap script failed: " + load.status().ToString());
  }

  Server::Config config;
  config.sessions.max_sessions = opts.max_sessions;
  config.sessions.idle_ttl_ms = opts.session_ttl_ms;
  config.cursors.max_cursors = opts.max_cursors;
  config.cursors.idle_ttl_ms = opts.cursor_ttl_ms;
  config.default_fetch_rows = opts.fetch_rows;
  Server server(&service, config);

  std::fprintf(stderr, "aggify_cli: serving %s (max %d sessions, %d cursors); "
                       "QUIT or EOF ends the session\n",
               targets[0].c_str(), opts.max_sessions, opts.max_cursors);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "QUIT" || line == "EXIT") break;
    std::string reply = server.Handle(line);
    std::fputs(reply.c_str(), stdout);
    std::fflush(stdout);
  }
  return 0;
}

int RunStats(const std::vector<std::string>& targets, const CliOptions& opts) {
  if (targets.size() != 1) {
    return Fail("stats needs exactly one input script (use '-' for stdin)");
  }
  auto source = ReadSource(targets[0]);
  if (!source.ok()) return Fail(source.status().message());

  Database db;
  Session session(&db, opts.ToEngineOptions());
  auto load = session.RunSql(*source);
  if (!load.ok()) {
    return Fail("script failed to load: " + load.status().ToString());
  }
  PrintStatsSnapshot(db, session.engine(), nullptr, opts.json);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Subcommand dispatch: an explicit first word, or the legacy spellings —
  // a bare invocation is `run`, `--lint` anywhere selects `lint`.
  std::string command;
  int first_arg = 1;
  if (argc >= 2 && argv[1][0] != '-') {
    std::string word = argv[1];
    if (word == "run" || word == "lint" || word == "serve" ||
        word == "stats") {
      command = word;
      first_arg = 2;
    }
  }

  CliOptions opts;
  std::vector<std::string> targets;
  for (int i = first_arg; i < argc; ++i) {
    if (argv[i][0] == '-' && std::strcmp(argv[i], "-") != 0) {
      Status st = ParseOption(argv[i], &opts);
      if (!st.ok()) return Fail(st.message());
    } else {
      targets.emplace_back(argv[i]);
    }
  }
  if (command.empty()) command = opts.lint ? "lint" : "run";

  if (command == "lint") return RunLint(targets, opts);
  if (command == "serve") return RunServe(targets, opts);
  if (command == "stats") return RunStats(targets, opts);
  return RunRewrite(targets, opts);
}
