// Morsel-driven parallel aggregation scaling: one merge-eligible
// interpreted Agg_Δ (a sum + guarded-max loop body, so native-fold lowering
// does not apply) over the full lineitem table, executed at DOP 1/2/4/8.
//
// Prints the scaling curve (seconds, speedup vs DOP 1) and cross-checks
// that every DOP returns the bit-identical result — parallel execution is
// an optimization, never observable (DESIGN.md invariant 9). Speedup
// tracks physical cores: on a single-core container the curve is flat and
// that is the honest answer.
#include <chrono>
#include <functional>
#include <thread>

#include "aggify/rewriter.h"
#include "bench_util.h"
#include "common/query_context.h"
#include "procedural/session.h"
#include "tpch/tpch_gen.h"

using namespace aggify;
using namespace aggify::bench;

namespace {

double TimeIt(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main() {
  TpchConfig config;
  config.scale_factor = GetScaleFactor(QuickMode() ? 0.005 : 0.02);
  Database db;
  RequireOk(PopulateTpch(&db, config), "PopulateTpch");

  {
    Session setup(&db);
    RequireOk(setup.RunSql(R"(
      CREATE FUNCTION scan_stats() RETURNS FLOAT AS
      BEGIN
        DECLARE @q FLOAT;
        DECLARE @p FLOAT;
        DECLARE @s FLOAT = 0.0;
        DECLARE @m FLOAT = 0.0;
        DECLARE c CURSOR FOR SELECT l_quantity, l_extendedprice
                             FROM lineitem WHERE l_quantity > 1;
        OPEN c;
        FETCH NEXT FROM c INTO @q, @p;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @s = @s + @q;
          IF (@p > @m)
            SET @m = @p;
          FETCH NEXT FROM c INTO @q, @p;
        END
        CLOSE c; DEALLOCATE c;
        RETURN @s + @m;
      END
    )").status(), "create scan_stats");
  }
  Aggify aggify(&db);
  AggifyReport report =
      RequireOk(aggify.RewriteFunction("scan_stats"), "aggify");
  if (report.loops_rewritten != 1 || !report.rewrites[0].merge_supported ||
      !report.rewrites[0].parallel_eligible) {
    std::fprintf(stderr, "FATAL: scan_stats is not a merge-eligible rewrite\n");
    return 1;
  }
  std::printf("interpreted Agg_delta over lineitem (sf=%.3f), derived "
              "Merge proven\n\n",
              config.scale_factor);

  const int reps = QuickMode() ? 2 : 5;
  double base_seconds = 0;
  Value base_value;
  TextTable table({"dop", "seconds", "speedup vs dop=1", "plan root"});
  for (int dop : {1, 2, 4, 8}) {
    Session session(&db, EngineOptions::WithDop(dop));
    // Warm-up run: first execution pays plan construction and page faults.
    Value value = RequireOk(session.Call("scan_stats", {}), "warm-up call");
    double seconds = TimeIt([&] {
      for (int i = 0; i < reps; ++i) {
        RequireOk(session.Call("scan_stats", {}).status(), "call");
      }
    }) / reps;
    if (dop == 1) {
      base_seconds = seconds;
      base_value = value;
    } else if (!value.StructurallyEquals(base_value)) {
      std::fprintf(stderr, "FATAL: dop=%d result %s != dop=1 result %s\n",
                   dop, value.ToString().c_str(),
                   base_value.ToString().c_str());
      return 1;
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  seconds > 0 ? base_seconds / seconds : 0.0);
    table.AddRow({std::to_string(dop), FormatSeconds(seconds), speedup,
                  dop == 1 ? "HashAggregate"
                           : "Gather(dop=" + std::to_string(dop) + ")"});
  }
  table.Print();
  std::printf("\nresult identical across every DOP: %s\n",
              base_value.ToString().c_str());

  // --- DOP-1 batch vs row (docs/VECTORIZATION.md) --------------------------
  // A native aggregation whose arguments are all bare columns, so the
  // planner takes the vectorized pipeline when enable_batch is on: columnar
  // scan batches, a compiled filter kernel, and type-specialized fold
  // kernels instead of per-row boxed evaluation. Results must be
  // bit-identical; the speedup is emitted as a machine-readable JSON row.
  {
    EngineOptions row_options;  // dop=1 defaults, vectorization off
    row_options.execution.enable_batch = false;
    Session batch_session(&db);
    Session row_session(&db, row_options);
    const std::string sql =
        "SELECT COUNT(*), SUM(l_quantity), MIN(l_extendedprice), "
        "MAX(l_extendedprice), AVG(l_quantity) "
        "FROM lineitem WHERE l_quantity > 1";
    QueryResult batch_result =
        RequireOk(batch_session.Query(sql), "batch warm-up");
    QueryResult row_result = RequireOk(row_session.Query(sql), "row warm-up");
    for (size_t c = 0; c < batch_result.rows[0].size(); ++c) {
      if (!batch_result.rows[0][c].StructurallyEquals(row_result.rows[0][c])) {
        std::fprintf(stderr, "FATAL: batch column %zu %s != row %s\n", c,
                     batch_result.rows[0][c].ToString().c_str(),
                     row_result.rows[0][c].ToString().c_str());
        return 1;
      }
    }
    const int batch_reps = QuickMode() ? 3 : 10;
    double row_seconds = TimeIt([&] {
      for (int i = 0; i < batch_reps; ++i) {
        RequireOk(row_session.Query(sql).status(), "row agg");
      }
    }) / batch_reps;
    double batch_seconds = TimeIt([&] {
      for (int i = 0; i < batch_reps; ++i) {
        RequireOk(batch_session.Query(sql).status(), "batch agg");
      }
    }) / batch_reps;
    double speedup = batch_seconds > 0 ? row_seconds / batch_seconds : 0.0;
    std::printf("\ndop=1 native aggregation: row %s, batch %s (%.2fx), "
                "results bit-identical\n",
                FormatSeconds(row_seconds).c_str(),
                FormatSeconds(batch_seconds).c_str(), speedup);
    std::printf("{\"bench\": \"parallel_scale\", \"metric\": "
                "\"dop1_batch_vs_row_speedup\", \"value\": %.2f}\n",
                speedup);
  }

  // --- cancellation latency at DOP 8 (docs/ROBUSTNESS.md) ------------------
  // How long from Cancel() until every worker has quiesced and the
  // coordinator returns. Workers poll the shared QueryContext once per
  // morsel, so the bound is roughly one morsel of work per worker; the
  // worst observed round is reported. A round that finishes before the
  // cancel lands measures the join of an already-done query — near zero,
  // and an honest sample.
  {
    Session session(&db, EngineOptions::WithDop(8));
    const std::string sql =
        "SELECT l_returnflag, COUNT(*), SUM(l_quantity), "
        "MAX(l_extendedprice) FROM lineitem GROUP BY l_returnflag";
    auto stmt = RequireOk(ParseSelect(sql), "parse cancel query");
    const int rounds = QuickMode() ? 3 : 8;
    double worst_ms = 0.0;
    int cancelled_rounds = 0;
    for (int round = 0; round < rounds; ++round) {
      ExecContext ctx = session.MakeContext();
      QueryContext qc(/*timeout_ms=*/0, /*memory_limit_bytes=*/0,
                      &db.robustness());
      ctx.set_query_context(&qc);
      Status status = Status::OK();
      std::thread runner([&] {
        status = session.engine().Execute(*stmt, ctx).status();
      });
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      auto cancel_at = std::chrono::steady_clock::now();
      qc.Cancel();
      runner.join();
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - cancel_at)
                      .count();
      if (ms > worst_ms) worst_ms = ms;
      if (!status.ok()) ++cancelled_rounds;
    }
    std::printf("\ncancellation at dop=8: worst cancel-to-quiescence %.3fms "
                "(%d/%d rounds cancelled mid-flight)\n",
                worst_ms, cancelled_rounds, rounds);
    std::printf("{\"bench\": \"parallel_scale\", \"metric\": "
                "\"cancellation_latency_ms\", \"value\": %.3f}\n",
                worst_ms);
  }

  // --- graceful degradation vs hard failure --------------------------------
  // A budget that fits serial row mode degrades (batch -> row -> serial)
  // and still answers; a budget that fits nothing surrenders. The JSON pair
  // is the ladder's scorecard: queries saved vs queries lost.
  {
    db.robustness().Reset();
    const std::string sql =
        "SELECT l_returnflag, SUM(l_quantity) FROM lineitem "
        "GROUP BY l_returnflag";
    EngineOptions tight = EngineOptions::WithDop(8);
    tight.limits.memory_limit_bytes = 4096;  // serial row mode fits
    Session tight_session(&db, tight);
    RequireOk(tight_session.Query(sql).status(), "degraded query");
    EngineOptions impossible = EngineOptions::WithDop(8);
    impossible.limits.memory_limit_bytes = 16;  // nothing fits
    Session impossible_session(&db, impossible);
    Status st = impossible_session.Query(sql).status();
    if (st.ok()) {
      std::fprintf(stderr, "FATAL: 16-byte budget unexpectedly succeeded\n");
      return 1;
    }
    const int64_t degraded = db.robustness().degraded_batch_to_row +
                             db.robustness().degraded_parallel_to_serial;
    const int64_t failed = db.robustness().resource_exhausted_failures;
    std::printf("\nmemory-budget ladder: %lld degradation rung(s) taken, "
                "%lld quer(ies) surrendered\n",
                static_cast<long long>(degraded),
                static_cast<long long>(failed));
    std::printf("{\"bench\": \"parallel_scale\", \"metric\": "
                "\"degraded_vs_failed\", \"degraded\": %lld, "
                "\"failed\": %lld}\n",
                static_cast<long long>(degraded),
                static_cast<long long>(failed));
  }
  return 0;
}
