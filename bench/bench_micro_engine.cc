// Engine micro-benchmarks (google-benchmark): operator throughput, the
// aggregation-contract overhead of interpreted (synthesized) aggregates vs
// built-ins, parser throughput, and cursor fetch cost. These calibrate the
// substrate so the macro results in the figure benches can be interpreted.
#include <benchmark/benchmark.h>

#include "aggify/rewriter.h"
#include "bench_util.h"
#include "common/failpoint.h"
#include "procedural/session.h"
#include "tpch/tpch_gen.h"

namespace aggify {
namespace {

Database* SharedDb() {
  static Database* db = [] {
    auto* d = new Database();
    TpchConfig config;
    config.scale_factor = 0.002;
    bench::RequireOk(PopulateTpch(d, config), "PopulateTpch");
    return d;
  }();
  return db;
}

void BM_SeqScanSum(benchmark::State& state) {
  Session session(SharedDb());
  for (auto _ : state) {
    auto r = session.Query("SELECT SUM(l_extendedprice) FROM lineitem");
    bench::RequireOk(r.status(), "query");
    benchmark::DoNotOptimize(r->rows);
  }
  auto lineitem = SharedDb()->catalog().GetTable("lineitem");
  state.SetItemsProcessed(state.iterations() * (*lineitem)->num_rows());
}
BENCHMARK(BM_SeqScanSum);

void BM_HashJoin(benchmark::State& state) {
  Session session(SharedDb());
  for (auto _ : state) {
    auto r = session.Query(
        "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey");
    bench::RequireOk(r.status(), "query");
    benchmark::DoNotOptimize(r->rows);
  }
}
BENCHMARK(BM_HashJoin);

void BM_HashAggregateGroupBy(benchmark::State& state) {
  Session session(SharedDb());
  for (auto _ : state) {
    auto r = session.Query(
        "SELECT l_returnflag, SUM(l_quantity), AVG(l_discount) "
        "FROM lineitem GROUP BY l_returnflag");
    bench::RequireOk(r.status(), "query");
    benchmark::DoNotOptimize(r->rows);
  }
}
BENCHMARK(BM_HashAggregateGroupBy);

void BM_SortTopN(benchmark::State& state) {
  Session session(SharedDb());
  for (auto _ : state) {
    auto r = session.Query(
        "SELECT TOP 10 l_orderkey, l_extendedprice FROM lineitem "
        "ORDER BY l_extendedprice DESC");
    bench::RequireOk(r.status(), "query");
    benchmark::DoNotOptimize(r->rows);
  }
}
BENCHMARK(BM_SortTopN);

void BM_IndexSeek(benchmark::State& state) {
  Session session(SharedDb());
  int64_t key = 1;
  for (auto _ : state) {
    auto r = session.Query("SELECT COUNT(*) FROM lineitem WHERE l_orderkey = " +
                           std::to_string(1 + key++ % 100));
    bench::RequireOk(r.status(), "query");
    benchmark::DoNotOptimize(r->rows);
  }
}
BENCHMARK(BM_IndexSeek);

void BM_BuiltinAggregate(benchmark::State& state) {
  // MIN over partsupp via the built-in.
  Session session(SharedDb());
  for (auto _ : state) {
    auto r = session.Query("SELECT MIN(ps_supplycost) FROM partsupp");
    bench::RequireOk(r.status(), "query");
    benchmark::DoNotOptimize(r->rows);
  }
}
BENCHMARK(BM_BuiltinAggregate);

void BM_SynthesizedAggregate(benchmark::State& state) {
  // The same MIN computed by an Aggify-synthesized (interpreted) aggregate:
  // measures the interpretation overhead of the Accumulate contract.
  static Database* db = [] {
    auto* d = new Database();
    TpchConfig config;
    config.scale_factor = 0.002;
    bench::RequireOk(PopulateTpch(d, config), "PopulateTpch");
    Session s(d);
    bench::RequireOk(s.RunSql(R"(
      CREATE FUNCTION min_cost() RETURNS FLOAT AS
      BEGIN
        DECLARE @c FLOAT;
        DECLARE @m FLOAT = 100000000.0;
        DECLARE cur CURSOR FOR SELECT ps_supplycost FROM partsupp;
        OPEN cur;
        FETCH NEXT FROM cur INTO @c;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF (@c < @m)
            SET @m = @c;
          FETCH NEXT FROM cur INTO @c;
        END
        CLOSE cur; DEALLOCATE cur;
        RETURN @m;
      END
    )").status(), "create");
    Aggify aggify(d);
    bench::RequireOk(aggify.RewriteFunction("min_cost").status(), "aggify");
    return d;
  }();
  Session session(db);
  for (auto _ : state) {
    auto r = session.Call("min_cost", {});
    bench::RequireOk(r.status(), "call");
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_SynthesizedAggregate);

void BM_CursorLoopInterpreted(benchmark::State& state) {
  // The original cursor loop for the same MIN: the full curse.
  static Database* db = [] {
    auto* d = new Database();
    TpchConfig config;
    config.scale_factor = 0.002;
    bench::RequireOk(PopulateTpch(d, config), "PopulateTpch");
    Session s(d);
    bench::RequireOk(s.RunSql(R"(
      CREATE FUNCTION min_cost_cursor() RETURNS FLOAT AS
      BEGIN
        DECLARE @c FLOAT;
        DECLARE @m FLOAT = 100000000.0;
        DECLARE cur CURSOR FOR SELECT ps_supplycost FROM partsupp;
        OPEN cur;
        FETCH NEXT FROM cur INTO @c;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF (@c < @m)
            SET @m = @c;
          FETCH NEXT FROM cur INTO @c;
        END
        CLOSE cur; DEALLOCATE cur;
        RETURN @m;
      END
    )").status(), "create");
    return d;
  }();
  Session session(db);
  for (auto _ : state) {
    auto r = session.Call("min_cost_cursor", {});
    bench::RequireOk(r.status(), "call");
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_CursorLoopInterpreted);

void BM_FailpointCheckDisarmed(benchmark::State& state) {
  // The disarmed fast path every instrumented Next()/Accumulate pays: one
  // relaxed atomic load. This is the overhead budget of the framework.
  for (auto _ : state) {
    Status st = FailPoints::Check("exec.scan.next");
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FailpointCheckDisarmed);

void BM_FailpointCheckArmedMiss(benchmark::State& state) {
  // Slow path cost when some unrelated site is armed: registry lookup under
  // the mutex that finds nothing for this site.
  ScopedFailPoint fp("bench.unrelated.site");
  for (auto _ : state) {
    Status st = FailPoints::Check("exec.scan.next");
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FailpointCheckArmedMiss);

void BM_GuardedFallbackDegradation(benchmark::State& state) {
  // Cost of the slow-but-correct degradation: every call fails the rewritten
  // aggregate query and re-executes the original cursor loop. Compare with
  // BM_SynthesizedAggregate (fault-free) and BM_CursorLoopInterpreted (the
  // loop alone).
  static Database* db = [] {
    auto* d = new Database();
    TpchConfig config;
    config.scale_factor = 0.002;
    bench::RequireOk(PopulateTpch(d, config), "PopulateTpch");
    Session s(d);
    bench::RequireOk(s.RunSql(R"(
      CREATE FUNCTION min_cost_guarded() RETURNS FLOAT AS
      BEGIN
        DECLARE @c FLOAT;
        DECLARE @m FLOAT = 100000000.0;
        DECLARE cur CURSOR FOR SELECT ps_supplycost FROM partsupp;
        OPEN cur;
        FETCH NEXT FROM cur INTO @c;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF (@c < @m)
            SET @m = @c;
          FETCH NEXT FROM cur INTO @c;
        END
        CLOSE cur; DEALLOCATE cur;
        RETURN @m;
      END
    )").status(), "create");
    Aggify aggify(d);
    bench::RequireOk(aggify.RewriteFunction("min_cost_guarded").status(),
                     "aggify");
    return d;
  }();
  ScopedFailPoint fp("exec.agg.accumulate");
  Session session(db);
  for (auto _ : state) {
    auto r = session.Call("min_cost_guarded", {});
    bench::RequireOk(r.status(), "call");
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_GuardedFallbackDegradation);

void BM_ParseSelect(benchmark::State& state) {
  const std::string sql =
      "SELECT p_partkey, MIN(ps_supplycost) AS c FROM part, partsupp "
      "WHERE p_partkey = ps_partkey AND p_size <= 15 "
      "GROUP BY p_partkey HAVING MIN(ps_supplycost) > 100 "
      "ORDER BY c DESC";
  for (auto _ : state) {
    auto r = ParseSelect(sql);
    bench::RequireOk(r.status(), "parse");
    benchmark::DoNotOptimize(*r);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(sql.size()));
}
BENCHMARK(BM_ParseSelect);

void BM_AggifyRewrite(benchmark::State& state) {
  // Cost of the analysis + rewrite itself (Algorithm 1 end-to-end).
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    Session s(&db);
    bench::RequireOk(s.RunSql(R"(
      CREATE FUNCTION f(@k INT) RETURNS FLOAT AS
      BEGIN
        DECLARE @x FLOAT;
        DECLARE @m FLOAT = 0.0;
        DECLARE c CURSOR FOR SELECT ps_supplycost FROM partsupp
                             WHERE ps_partkey = @k ORDER BY ps_supplycost;
        OPEN c;
        FETCH NEXT FROM c INTO @x;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          IF (@x > @m)
            SET @m = @x;
          FETCH NEXT FROM c INTO @x;
        END
        CLOSE c; DEALLOCATE c;
        RETURN @m;
      END
    )").status(), "create");
    state.ResumeTiming();
    Aggify aggify(&db);
    auto report = aggify.RewriteFunction("f");
    bench::RequireOk(report.status(), "rewrite");
    benchmark::DoNotOptimize(report->loops_rewritten);
  }
}
BENCHMARK(BM_AggifyRewrite);

}  // namespace
}  // namespace aggify

BENCHMARK_MAIN();
