// Figure 10(a) / Experiment 1: scalability of TPC-H Q2 with the number of
// loop iterations (parts processed).
//
// Paper shape to reproduce: at small iteration counts Aggify alone is close
// to the original; beyond a point the original degrades drastically while
// Aggify stays flat-ish; Aggify+ is about an order of magnitude better
// throughout.
#include "bench_util.h"
#include "tpch/tpch_gen.h"
#include "workloads/tpch_adapter.h"

using namespace aggify;
using namespace aggify::bench;

int main() {
  TpchConfig config;
  config.scale_factor = GetScaleFactor(QuickMode() ? 0.005 : 0.02);
  Database db;
  RequireOk(PopulateTpch(&db, config), "PopulateTpch");
  const int64_t max_parts = config.num_parts();

  std::printf("Figure 10(a): Q2 scalability vs loop iterations, SF=%.4g "
              "(%lld parts)\n\n",
              config.scale_factor, static_cast<long long>(max_parts));

  TextTable table({"Iterations", "Original", "Aggify", "Aggify+",
                   "Aggify+ speedup"});
  std::vector<int64_t> sweep;
  for (int64_t n = QuickMode() ? 40 : 4; n <= max_parts; n *= 10) {
    sweep.push_back(n);
  }
  if (sweep.empty() || sweep.back() != max_parts) sweep.push_back(max_parts);

  for (int64_t n : sweep) {
    WorkloadQuery w = ToWorkloadQuery(
        RequireOk(GetTpchCursorQuery("Q2"), "GetTpchCursorQuery"));
    w.driver_sql = "SELECT p_partkey, q2_mincostsupp(p_partkey) AS s "
                   "FROM part WHERE p_partkey <= " + std::to_string(n);
    RunMetrics original =
        RequireOk(RunWorkloadQuery(&db, w, RunMode::kOriginal), "original");
    RunMetrics aggify =
        RequireOk(RunWorkloadQuery(&db, w, RunMode::kAggify), "aggify");
    RunMetrics plus =
        RequireOk(RunWorkloadQuery(&db, w, RunMode::kAggifyPlus), "aggify+");
    table.AddRow({std::to_string(n), FormatSeconds(original.modeled_seconds),
                  FormatSeconds(aggify.modeled_seconds), FormatSeconds(plus.modeled_seconds),
                  FormatSpeedup(original.modeled_seconds, plus.modeled_seconds)});
  }
  table.Print();
  return 0;
}
