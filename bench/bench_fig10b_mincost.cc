// Figure 10(b) / Experiment 2: the MinCostSupplier client program — time
// and data movement as the iteration count (#parts) sweeps by 10x.
//
// Paper shape to reproduce: below ~2K iterations the benefit is modest;
// beyond it, a consistent order-of-magnitude improvement. Data moved for
// the original grows linearly; the rewritten program's stays constant
// (paper: (140+n) vs (38+n) bytes per its simplified accounting — here the
// rewritten program returns a single aggregate row, so the reduction is
// even stronger).
#include "bench_util.h"
#include "tpch/tpch_gen.h"
#include "workloads/client_harness.h"
#include "workloads/client_programs.h"

using namespace aggify;
using namespace aggify::bench;

int main() {
  TpchConfig config;
  config.scale_factor = GetScaleFactor(QuickMode() ? 0.005 : 0.02);
  Database db;
  RequireOk(PopulateTpch(&db, config), "PopulateTpch");
  const int64_t max_parts = config.num_parts();

  std::printf("Figure 10(b): MinCostSupplier client program, SF=%.4g "
              "(%lld parts; paper swept 200 to 2M)\n\n",
              config.scale_factor, static_cast<long long>(max_parts));

  TextTable table({"Iterations", "Original", "Aggify", "Speedup",
                   "Data moved (orig)", "Data moved (Aggify)", "Reduction"});
  for (int64_t n = QuickMode() ? 40 : 4; n <= max_parts; n *= 10) {
    std::string program = MakeMinCostSupplierProgram(n);
    ClientComparison cmp =
        RequireOk(CompareClientProgram(&db, program), "MinCostSupplier");
    char reduction[32];
    std::snprintf(reduction, sizeof(reduction), "%.1fx", cmp.DataReduction());
    table.AddRow({std::to_string(n), FormatSeconds(cmp.original.TotalSeconds()),
                  FormatSeconds(cmp.aggified.TotalSeconds()),
                  FormatSpeedup(cmp.original.TotalSeconds(),
                                cmp.aggified.TotalSeconds()),
                  FormatBytes(cmp.original.network.bytes_to_client),
                  FormatBytes(cmp.aggified.network.bytes_to_client),
                  reduction});
  }
  table.Print();
  return 0;
}
