// Figure 9(b): RUBiS client loops — original client program vs Aggify
// rewrite, over the simulated LAN.
//
// Paper shape to reproduce: Aggify improves every scenario, with benefits
// stemming mainly from the reduction in data transferred between the DBMS
// and the client application.
#include "bench_util.h"
#include "workloads/client_harness.h"
#include "workloads/rubis.h"

using namespace aggify;
using namespace aggify::bench;

int main() {
  RubisConfig config;
  if (!QuickMode()) {
    config.num_users = 400;
    config.bids_per_item = 60;
  }
  Database db;
  RequireOk(PopulateRubis(&db, config), "PopulateRubis");

  std::printf("Figure 9(b): RUBiS client loops over a simulated LAN "
              "(%lld users)\n\n",
              static_cast<long long>(config.num_users));

  TextTable table({"Scenario (iterations)", "Original", "Aggify", "Speedup",
                   "Data to client (orig)", "Data to client (Aggify)"});
  for (const auto& scenario : RubisScenarios()) {
    std::string program = InstantiateRubisScenario(scenario, 3);
    ClientComparison cmp = RequireOk(
        CompareClientProgram(&db, program), scenario.id.c_str());
    table.AddRow({scenario.label, FormatSeconds(cmp.original.TotalSeconds()),
                  FormatSeconds(cmp.aggified.TotalSeconds()),
                  FormatSpeedup(cmp.original.TotalSeconds(),
                                cmp.aggified.TotalSeconds()),
                  FormatBytes(cmp.original.network.bytes_to_client),
                  FormatBytes(cmp.aggified.network.bytes_to_client)});
  }
  table.Print();
  return 0;
}
