// Shared utilities for the paper-reproduction bench binaries.
//
// Each binary regenerates one table or figure of the paper's evaluation:
// it prints the same rows/series the paper reports (absolute numbers differ
// — this substrate is an interpreter, not SQL Server on a Quad Core i7 —
// but the shape: who wins, by what factor, where crossovers fall, should
// hold; see EXPERIMENTS.md).
//
// Environment knobs:
//   AGGIFY_SF     TPC-H scale factor (default 0.01)
//   AGGIFY_QUICK  if set, shrink sweeps for smoke runs
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/result.h"

namespace aggify {
namespace bench {

inline double GetScaleFactor(double fallback = 0.01) {
  const char* sf = std::getenv("AGGIFY_SF");
  return sf != nullptr ? std::atof(sf) : fallback;
}

inline bool QuickMode() { return std::getenv("AGGIFY_QUICK") != nullptr; }

/// Aborts with a message if `status` is not OK (benches have no recovery
/// path; a failure means the reproduction is broken).
inline void RequireOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL in %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T RequireOk(Result<T> result, const char* what) {
  RequireOk(result.status(), what);
  return std::move(result).ValueOrDie();
}

/// Fixed-width text table, paper style.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t i = 0; i < headers_.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : "";
        std::printf(" %-*s |", static_cast<int>(widths[i]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t i = 0; i < headers_.size(); ++i) {
      std::printf("%s|", std::string(widths[i] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string FormatSeconds(double s) {
  char buf[32];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  }
  return buf;
}

inline std::string FormatCount(int64_t n) {
  char buf[32];
  if (n >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2fM", static_cast<double>(n) / 1e6);
  } else if (n >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
  }
  return buf;
}

inline std::string FormatBytes(int64_t n) {
  char buf[32];
  if (n >= 1 << 20) {
    std::snprintf(buf, sizeof(buf), "%.2f MB",
                  static_cast<double>(n) / (1 << 20));
  } else if (n >= 1 << 10) {
    std::snprintf(buf, sizeof(buf), "%.2f KB",
                  static_cast<double>(n) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(n));
  }
  return buf;
}

inline std::string FormatSpeedup(double original, double improved) {
  if (improved <= 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx", original / improved);
  return buf;
}

}  // namespace bench
}  // namespace aggify
