// Server concurrency scaling: N simulated clients (1/4/16/64) drive one
// Server through the text protocol with a mixed QUERY + DECLARE/FETCH/CLOSE
// workload over TPC-H lineitem. Reports throughput (requests/s, rows/s) per
// client count, plan-cache hit rate across sessions, and verifies the
// zero-leak invariant: after every run the cursor registry and session
// table are empty again.
//
// All sessions open with identical plan-affecting options, so the shared
// plan cache should serve most statements from cache after warmup — the
// cross-session reuse the PR 10 API split exists for.
#include <chrono>

#include "bench_util.h"
#include "tpch/tpch_gen.h"
#include "workloads/multi_client_harness.h"

using namespace aggify;
using namespace aggify::bench;

namespace {

std::string FormatDouble(double v, int places) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", places, v);
  return buf;
}

}  // namespace

int main() {
  TpchConfig config;
  config.scale_factor = GetScaleFactor(QuickMode() ? 0.002 : 0.01);
  Database db;
  RequireOk(PopulateTpch(&db, config), "PopulateTpch");

  EngineOptions options;
  options.limits.max_concurrent_queries = 8;
  options.limits.admission_timeout_ms = 10'000;
  EngineService service(&db, options);

  MultiClientConfig base;
  base.requests_per_client = QuickMode() ? 4 : 8;
  base.declare_every = 2;
  base.fetch_rows = 16;
  base.statements = {
      "SELECT COUNT(*) FROM lineitem WHERE l_quantity > 10",
      "SELECT l_orderkey, SUM(l_extendedprice) FROM lineitem "
      "WHERE l_quantity > 25 GROUP BY l_orderkey",
      "SELECT MAX(l_extendedprice) FROM lineitem",
      "SELECT l_linenumber, COUNT(*) FROM lineitem GROUP BY l_linenumber",
  };
  base.open_options = "dop=2 batch=1";

  std::printf("server scaling, mixed QUERY + cursor workload "
              "(sf=%.3f, %d requests/client)\n\n",
              config.scale_factor, base.requests_per_client);
  TextTable table({"clients", "requests", "rows", "req/s", "errors",
                   "cache hit%", "leaked cursors"});

  const int counts[] = {1, 4, 16, 64};
  for (int clients : counts) {
    // Fresh server per point: session/cursor counters start at zero, but
    // the plan cache persists in the service — later points inherit the
    // earlier warmup, exactly like a long-lived server would.
    Server::Config server_config;
    server_config.sessions.max_sessions = 128;
    server_config.cursors.max_cursors = 256;
    Server server(&service, server_config);

    MultiClientConfig run = base;
    run.clients = clients;
    run.seed = 0xC11E27 + clients;
    MultiClientHarness harness(&server, run);
    MultiClientReport report = RequireOk(harness.Run(), "harness run");

    ServerStatsSnapshot stats = server.Stats();
    int64_t leaked = server.cursors().open_cursors();
    double hit_rate =
        stats.plan_cache_hits + stats.plan_cache_misses > 0
            ? 100.0 * stats.plan_cache_hits /
                  (stats.plan_cache_hits + stats.plan_cache_misses)
            : 0.0;
    double rps = report.wall_seconds > 0
                     ? report.requests / report.wall_seconds
                     : 0.0;

    table.AddRow({std::to_string(clients), std::to_string(report.requests),
                  std::to_string(report.rows_received),
                  FormatDouble(rps, 1), std::to_string(report.errors),
                  FormatDouble(hit_rate, 1), std::to_string(leaked)});

    std::printf("{\"bench\": \"server_scale\", \"metric\": "
                "\"requests_per_second\", \"clients\": %d, \"value\": %.2f}\n",
                clients, rps);
    std::printf("{\"bench\": \"server_scale\", \"metric\": "
                "\"rows_per_second\", \"clients\": %d, \"value\": %.2f}\n",
                clients,
                report.wall_seconds > 0
                    ? report.rows_received / report.wall_seconds
                    : 0.0);
    std::printf("{\"bench\": \"server_scale\", \"metric\": "
                "\"plan_cache_hit_rate\", \"clients\": %d, \"value\": %.4f}\n",
                clients, hit_rate / 100.0);
    std::printf("{\"bench\": \"server_scale\", \"metric\": "
                "\"leaked_cursors\", \"clients\": %d, \"value\": %d}\n",
                clients, static_cast<int>(leaked));

    if (leaked != 0 || server.sessions().open_sessions() != 0) {
      std::fprintf(stderr, "FATAL: leak after %d-client run (cursors=%lld "
                           "sessions=%lld)\n",
                   clients, static_cast<long long>(leaked),
                   static_cast<long long>(server.sessions().open_sessions()));
      return 1;
    }
    if (report.clients_completed != clients) {
      std::fprintf(stderr, "FATAL: %d of %d clients completed\n",
                   report.clients_completed, clients);
      return 1;
    }
  }

  std::printf("\n");
  table.Print();
  return 0;
}
