// Figure 9(c): customer-workload loops L1-L8 (synthetic analogues of W1-W3)
// — Original vs Aggify execution time.
//
// Paper shape to reproduce: improvements from 2x to 22x on most loops; L2
// and L6 (few tuples + temp-table DML inside the loop) show small or no
// gains; L8 (nested cursor loop) gains more than 2x.
#include "bench_util.h"
#include "workloads/real_workloads.h"

using namespace aggify;
using namespace aggify::bench;

int main() {
  RealWorkloadConfig config;
  config.base_rows = QuickMode() ? 500 : 4000;
  Database db;
  RequireOk(PopulateRealWorkloads(&db, config), "PopulateRealWorkloads");

  std::printf("Figure 9(c): real-workload loops L1-L8 (W1=CRM, W2=config "
              "mgmt, W3=transportation), base_rows=%lld\n\n",
              static_cast<long long>(config.base_rows));

  TextTable table(
      {"Loop", "Workload", "Original", "Aggify", "Speedup", "Notes"});
  for (const auto& loop : RealWorkloadLoops()) {
    RunMetrics original = RequireOk(
        RunWorkloadQuery(&db, loop.query, RunMode::kOriginal), "original");
    RunMetrics aggify = RequireOk(
        RunWorkloadQuery(&db, loop.query, RunMode::kAggify), "aggify");
    std::string notes;
    if (loop.nested) notes = "nested cursor loop";
    if (loop.query.id == "L2" || loop.query.id == "L6") {
      notes = "small + temp-table DML";
    }
    table.AddRow({loop.label, loop.workload, FormatSeconds(original.modeled_seconds),
                  FormatSeconds(aggify.modeled_seconds),
                  FormatSpeedup(original.modeled_seconds, aggify.modeled_seconds), notes});
  }
  table.Print();
  return 0;
}
