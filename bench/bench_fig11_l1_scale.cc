// Figure 11 / Experiment 4: loop L1 from workload W1 with varying iteration
// counts.
//
// Paper shape to reproduce: the benefits of Aggify grow with scale —
// pipelining (no worktable materialization) plus reduced interpretation.
#include "bench_util.h"
#include "workloads/real_workloads.h"

using namespace aggify;
using namespace aggify::bench;

int main() {
  RealWorkloadConfig config;
  config.base_rows = QuickMode() ? 5000 : 50000;
  Database db;
  RequireOk(PopulateRealWorkloads(&db, config), "PopulateRealWorkloads");
  const int64_t max_iters = config.base_rows * 2;

  std::printf("Figure 11: loop L1 (W1) scalability, up to %lld iterations\n\n",
              static_cast<long long>(max_iters));

  TextTable table({"Iterations", "Original", "Aggify", "Speedup"});
  for (int64_t n = 100; n <= max_iters; n *= 10) {
    WorkloadQuery q = MakeL1Query(n);
    RunMetrics original =
        RequireOk(RunWorkloadQuery(&db, q, RunMode::kOriginal), "original");
    RunMetrics aggify =
        RequireOk(RunWorkloadQuery(&db, q, RunMode::kAggify), "aggify");
    table.AddRow({std::to_string(n), FormatSeconds(original.modeled_seconds),
                  FormatSeconds(aggify.modeled_seconds),
                  FormatSpeedup(original.modeled_seconds, aggify.modeled_seconds)});
  }
  table.Print();
  return 0;
}
