// Figure 9(a): TPC-H cursor-loop workload — execution time of the six
// workload queries under Original / Aggify / Aggify+ ("Aggify+" = Froid
// applied after Aggify enables it, §8.2).
//
// Paper shape to reproduce: Aggify alone gives >=10x on Q2, Q14, Q18, Q21;
// Aggify+ gives further large gains on Q2, Q13, Q18; Q14 gains come from
// Aggify alone (Froid is not applicable to its multi-variable loop); Q21
// gains are bounded by the per-row subqueries remaining in the loop body.
#include "bench_util.h"
#include "tpch/tpch_gen.h"
#include "workloads/tpch_adapter.h"

using namespace aggify;
using namespace aggify::bench;

int main() {
  TpchConfig config;
  config.scale_factor = GetScaleFactor(QuickMode() ? 0.002 : 0.01);
  std::printf("Figure 9(a): TPC-H cursor workload, SF=%.4g "
              "(paper: SF 10, warm buffer pool)\n\n",
              config.scale_factor);

  Database db;
  RequireOk(PopulateTpch(&db, config), "PopulateTpch");

  TextTable table({"Query", "Original", "Aggify", "Aggify+",
                   "Aggify speedup", "Aggify+ speedup"});
  for (const auto& q : TpchCursorQueries()) {
    WorkloadQuery w = ToWorkloadQuery(q);
    RunMetrics original =
        RequireOk(RunWorkloadQuery(&db, w, RunMode::kOriginal), "original");
    RunMetrics aggify =
        RequireOk(RunWorkloadQuery(&db, w, RunMode::kAggify), "aggify");
    RunMetrics plus =
        RequireOk(RunWorkloadQuery(&db, w, RunMode::kAggifyPlus), "aggify+");
    table.AddRow({q.id, FormatSeconds(original.modeled_seconds),
                  FormatSeconds(aggify.modeled_seconds), FormatSeconds(plus.modeled_seconds),
                  FormatSpeedup(original.modeled_seconds, aggify.modeled_seconds),
                  FormatSpeedup(original.modeled_seconds, plus.modeled_seconds)});
  }
  table.Print();
  std::printf(
      "\nTimes are modeled: wall time + the CursorCostModel charge for the\n"
      "cursor machinery (per-FETCH dispatch, worktable pages) this in-memory\n"
      "substrate undercosts relative to a disk-based DBMS; rewritten plans\n"
      "produce none of those events. Raw wall numbers: EXPERIMENTS.md.\n"
      "The paper had to forcibly terminate Original Q2 (>10 days), Q13\n"
      "(>22 days) and Q21 (>9 hours) at SF 10; at this scale they complete,\n"
      "but the configuration ordering matches.\n");
  return 0;
}
