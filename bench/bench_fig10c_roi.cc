// Figure 10(c) / Experiment 3: the 50-column CumulativeROI client program —
// time and data movement as TOP n sweeps by 10x.
//
// Paper shape to reproduce: beyond ~3K iterations Aggify is an order of
// magnitude faster; the original transfers 200 bytes per iteration (6 GB at
// 30M rows) while Aggify returns a single 50-value tuple regardless of n.
#include "bench_util.h"
#include "workloads/client_harness.h"
#include "workloads/client_programs.h"

using namespace aggify;
using namespace aggify::bench;

int main() {
  const int64_t max_rows = QuickMode() ? 3000 : 30000;
  Database db;
  RequireOk(PopulateInvestments(&db, max_rows), "PopulateInvestments");

  std::printf("Figure 10(c): CumulativeROI with %d columns, %lld rows "
              "(paper swept 30 to 3M)\n\n",
              kRoiColumns, static_cast<long long>(max_rows));

  TextTable table({"Iterations", "Original", "Aggify", "Speedup",
                   "Data moved (orig)", "Data moved (Aggify)"});
  for (int64_t n = 30; n <= max_rows; n *= 10) {
    std::string program = MakeCumulativeRoiProgram(n);
    ClientComparison cmp =
        RequireOk(CompareClientProgram(&db, program), "CumulativeROI");
    table.AddRow({std::to_string(n), FormatSeconds(cmp.original.TotalSeconds()),
                  FormatSeconds(cmp.aggified.TotalSeconds()),
                  FormatSpeedup(cmp.original.TotalSeconds(),
                                cmp.aggified.TotalSeconds()),
                  FormatBytes(cmp.original.network.bytes_to_client),
                  FormatBytes(cmp.aggified.network.bytes_to_client)});
  }
  table.Print();
  return 0;
}
