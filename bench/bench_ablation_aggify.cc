// Ablations on the design choices DESIGN.md calls out:
//   (a) Eq. 6 order enforcement — cost of Sort + StreamAggregate vs the
//       (incorrect under ORDER BY) HashAggregate plan
//   (b) materialization vs pipelining — what fraction of the cursor's cost
//       is the worktable
//   (c) index seeks — Aggify's per-call aggregate query with and without
//       index selection
//   (d) client fetch batch size — how much of the Figure 2 pain is
//       round-trips vs bytes
//   (e) §8.1 FOR-loop conversion — interpreted FOR loop vs recursive-CTE
//       cursor loop vs its Aggify rewrite
//   (f) sort elision / derived Merge — forced Sort+StreamAggregate vs
//       HashAggregate vs partitioned partial aggregation
//   (g) simplification payoffs — interpreted Agg_Δ vs fetch-column pruning
//       vs native-fold lowering (AGG302/AGG304)
#include "aggify/rewriter.h"
#include "bench_util.h"
#include "tpch/tpch_gen.h"
#include "workloads/client_harness.h"
#include "workloads/client_programs.h"
#include "workloads/tpch_adapter.h"

#include <chrono>
#include <functional>

using namespace aggify;
using namespace aggify::bench;

namespace {

double TimeIt(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

void OrderEnforcementAblation(Database* db) {
  std::printf("\n(a) Eq. 6 order enforcement: ordered cursor rewrite\n");
  Session session(db);
  RequireOk(session.RunSql(R"(
    CREATE FUNCTION last_flag_ordered(@ok INT) RETURNS CHAR(1) AS
    BEGIN
      DECLARE @f CHAR(1);
      DECLARE @last CHAR(1);
      DECLARE c CURSOR FOR SELECT l_returnflag FROM lineitem
                           WHERE l_orderkey = @ok ORDER BY l_shipdate;
      OPEN c;
      FETCH NEXT FROM c INTO @f;
      WHILE @@FETCH_STATUS = 0
      BEGIN
        SET @last = @f;
        FETCH NEXT FROM c INTO @f;
      END
      CLOSE c; DEALLOCATE c;
      RETURN @last;
    END
  )").status(), "create last_flag_ordered");
  Aggify aggify(db);
  AggifyReport report =
      RequireOk(aggify.RewriteFunction("last_flag_ordered"), "aggify");
  std::printf("  rewritten with force_stream_aggregate=%s (ordered=%s)\n",
              report.rewrites[0].sets.ordered ? "true" : "false",
              report.rewrites[0].sets.ordered ? "yes" : "no");
  double t = TimeIt([&] {
    RequireOk(session.Query("SELECT TOP 200 o_orderkey, "
                            "last_flag_ordered(o_orderkey) AS f FROM orders")
                  .status(),
              "ordered driver");
  });
  std::printf("  StreamAggregate over sorted derived input: %s for 200 calls\n",
              FormatSeconds(t).c_str());
  std::printf("  (a HashAggregate here would be *wrong*: order-sensitive\n"
              "   loops require the streaming operator — see the\n"
              "   OrderByForcesStreamingAggregate tests)\n");
}

void SortElisionAblation() {
  std::printf("\n(f) sort elision: ordered cursor, order-insensitive body\n");
  // A sum fold over an ORDER BY cursor: the fold classifier proves the order
  // irrelevant, so Eq. 6's forced Sort + StreamAggregate can be dropped
  // (HashAggregate), and the decomposability proof's derived Merge allows
  // partitioned partial aggregation on top. Three isolated databases so each
  // configuration rewrites the same function text independently.
  auto make_fn = []() {
    return R"(
      CREATE FUNCTION qty_sum(@ok INT) RETURNS FLOAT AS
      BEGIN
        DECLARE @q FLOAT;
        DECLARE @s FLOAT = 0.0;
        DECLARE c CURSOR FOR SELECT l_quantity FROM lineitem
                             WHERE l_orderkey = @ok ORDER BY l_shipdate;
        OPEN c;
        FETCH NEXT FROM c INTO @q;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @s = @s + @q;
          FETCH NEXT FROM c INTO @q;
        END
        CLOSE c; DEALLOCATE c;
        RETURN @s;
      END
    )";
  };
  const char* driver =
      "SELECT TOP 200 o_orderkey, qty_sum(o_orderkey) AS s FROM orders";
  TpchConfig config;
  config.scale_factor = GetScaleFactor(QuickMode() ? 0.002 : 0.01);

  struct Variant {
    const char* label;
    bool elide;
    int dop;
  };
  for (const Variant& variant :
       {Variant{"forced Sort + StreamAggregate (elision off)", false, 1},
        Variant{"elided sort -> HashAggregate", true, 1},
        Variant{"elided sort + derived Merge, dop=4", true, 4}}) {
    Database db;
    RequireOk(PopulateTpch(&db, config), "PopulateTpch");
    EngineOptions options;
    options.execution.degree_of_parallelism = variant.dop;
    options.rewrite.elide_order_insensitive_sort = variant.elide;
    Session session(&db, options);
    RequireOk(session.RunSql(make_fn()).status(), "create qty_sum");
    Aggify aggify(&db, options);
    AggifyReport report =
        RequireOk(aggify.RewriteFunction("qty_sum"), "aggify");
    double t = TimeIt([&] {
      RequireOk(session.Query(driver).status(), "driver");
    });
    std::printf("  %-48s %s for 200 calls (sort_elided=%s, merge=%s)\n",
                variant.label, FormatSeconds(t).c_str(),
                report.rewrites[0].sort_elided ? "yes" : "no",
                report.rewrites[0].merge_supported ? "yes" : "no");
  }
}

void MaterializationAblation(Database* db) {
  std::printf("\n(b) materialization vs pipelining (L1-style single loop)\n");
  WorkloadQuery q = ToWorkloadQuery(
      RequireOk(GetTpchCursorQuery("Q14"), "GetTpchCursorQuery"));
  RunMetrics original =
      RequireOk(RunWorkloadQuery(db, q, RunMode::kOriginal), "original");
  RunMetrics aggify =
      RequireOk(RunWorkloadQuery(db, q, RunMode::kAggify), "aggify");
  std::printf("  Original: %s, worktable pages written=%lld read=%lld\n",
              FormatSeconds(original.seconds).c_str(),
              static_cast<long long>(original.worktable_pages_written),
              static_cast<long long>(original.worktable_pages_read));
  std::printf("  Aggify:   %s, worktable pages written=%lld read=%lld "
              "(pipelined)\n",
              FormatSeconds(aggify.seconds).c_str(),
              static_cast<long long>(aggify.worktable_pages_written),
              static_cast<long long>(aggify.worktable_pages_read));
}

void IndexAblation(Database* db) {
  std::printf("\n(c) index selection for the per-call aggregate query (Q18 "
              "Aggify, 300 orders)\n");
  WorkloadQuery q = ToWorkloadQuery(
      RequireOk(GetTpchCursorQuery("Q18"), "GetTpchCursorQuery"));
  q.driver_sql = "SELECT TOP 300 o_orderkey, q18_totalqty(o_orderkey) AS t "
                 "FROM orders";
  // With indexes (default database).
  RunMetrics with_index =
      RequireOk(RunWorkloadQuery(db, q, RunMode::kAggify), "with index");
  // Without: rebuild the database minus indexes.
  Database no_index_db;
  TpchConfig config;
  config.scale_factor = GetScaleFactor(QuickMode() ? 0.002 : 0.01);
  config.create_paper_indexes = false;
  RequireOk(PopulateTpch(&no_index_db, config), "PopulateTpch(no index)");
  RunMetrics without_index = RequireOk(
      RunWorkloadQuery(&no_index_db, q, RunMode::kAggify), "without index");
  std::printf("  IndexSeek plan:  %s (%s logical reads)\n",
              FormatSeconds(with_index.seconds).c_str(),
              FormatCount(with_index.logical_reads).c_str());
  std::printf("  SeqScan plan:    %s (%s logical reads)\n",
              FormatSeconds(without_index.seconds).c_str(),
              FormatCount(without_index.logical_reads).c_str());
}

void FetchBatchAblation(Database* db) {
  std::printf("\n(d) client fetch batch size (MinCostSupplier, 200 parts)\n");
  std::string program = MakeMinCostSupplierProgram(200);
  for (int64_t batch : {1, 10, 100}) {
    NetworkModel model;
    model.rows_per_fetch = batch;
    ClientComparison cmp =
        RequireOk(CompareClientProgram(db, program, model), "client");
    std::printf(
        "  batch=%3lld: original %s (%lld round trips) -> aggify %s "
        "(%lld round trips)\n",
        static_cast<long long>(batch),
        FormatSeconds(cmp.original.TotalSeconds()).c_str(),
        static_cast<long long>(cmp.original.network.round_trips),
        FormatSeconds(cmp.aggified.TotalSeconds()).c_str(),
        static_cast<long long>(cmp.aggified.network.round_trips));
  }
}

void ForLoopAblation(Database* db) {
  std::printf("\n(e) Section 8.1: FOR loop -> recursive-CTE cursor -> "
              "aggregate\n");
  Session session(db);
  RequireOk(session.RunSql(R"(
    CREATE FUNCTION sum_squares(@n INT) RETURNS INT AS
    BEGIN
      DECLARE @sum INT = 0;
      FOR @i = 1 TO @n
      BEGIN
        SET @sum = @sum + @i * @i;
      END
      RETURN @sum;
    END
  )").status(), "create sum_squares");
  const int64_t n = QuickMode() ? 2000 : 20000;
  double interpreted = TimeIt([&] {
    RequireOk(session.Call("sum_squares", {Value::Int(n)}).status(), "call");
  });
  EngineOptions options;
  options.rewrite.convert_for_loops = true;
  Aggify aggify(db, options);
  RequireOk(aggify.RewriteFunction("sum_squares").status(), "rewrite");
  double rewritten = TimeIt([&] {
    RequireOk(session.Call("sum_squares", {Value::Int(n)}).status(), "call");
  });
  std::printf("  interpreted FOR loop (n=%lld): %s\n",
              static_cast<long long>(n), FormatSeconds(interpreted).c_str());
  std::printf("  recursive CTE + custom aggregate: %s\n",
              FormatSeconds(rewritten).c_str());
}

void SimplificationPayoffAblation() {
  std::printf("\n(g) simplification payoffs: fetch pruning + native-fold "
              "lowering\n");
  // A plain sum fold whose cursor fetches two columns the body never reads.
  // The ladder isolates the two rewriter-visible payoffs: pruning shrinks
  // every materialized derived row from 3 columns to 1 (AGG302), and
  // lowering replaces the interpreted Agg_Δ — one Accumulate per row
  // through the statement interpreter — with the engine's native sum
  // (AGG304). Fresh database per variant so each rewrite starts from the
  // same function text.
  auto make_fn = []() {
    return R"(
      CREATE FUNCTION qty_total(@ok INT) RETURNS FLOAT AS
      BEGIN
        DECLARE @q FLOAT;
        DECLARE @p FLOAT;
        DECLARE @d FLOAT;
        DECLARE @s FLOAT = 0.0;
        DECLARE c CURSOR FOR SELECT l_quantity, l_extendedprice, l_discount
                             FROM lineitem WHERE l_orderkey = @ok;
        OPEN c;
        FETCH NEXT FROM c INTO @q, @p, @d;
        WHILE @@FETCH_STATUS = 0
        BEGIN
          SET @s = @s + @q;
          FETCH NEXT FROM c INTO @q, @p, @d;
        END
        CLOSE c; DEALLOCATE c;
        RETURN @s;
      END
    )";
  };
  const char* driver =
      "SELECT TOP 200 o_orderkey, qty_total(o_orderkey) AS s FROM orders";
  TpchConfig config;
  config.scale_factor = GetScaleFactor(QuickMode() ? 0.002 : 0.01);

  struct Variant {
    const char* label;
    bool prune;
    bool lower;
  };
  for (const Variant& variant :
       {Variant{"interpreted Agg_delta, full projection", false, false},
        Variant{"+ fetch-column pruning (AGG302)", true, false},
        Variant{"+ native sum lowering (AGG304)", true, true}}) {
    Database db;
    RequireOk(PopulateTpch(&db, config), "PopulateTpch");
    Session session(&db);
    RequireOk(session.RunSql(make_fn()).status(), "create qty_total");
    EngineOptions options;
    options.rewrite.prune_fetch_columns = variant.prune;
    options.rewrite.lower_native_folds = variant.lower;
    Aggify aggify(&db, options);
    AggifyReport report =
        RequireOk(aggify.RewriteFunction("qty_total"), "aggify");
    double t = TimeIt([&] {
      RequireOk(session.Query(driver).status(), "driver");
    });
    std::printf("  %-44s %s for 200 calls (pruned=%zu, lowered=%s)\n",
                variant.label, FormatSeconds(t).c_str(),
                report.rewrites[0].pruned_fetch_columns.size(),
                report.rewrites[0].lowered_to_builtin ? "yes" : "no");
  }
}

}  // namespace

int main() {
  TpchConfig config;
  config.scale_factor = GetScaleFactor(QuickMode() ? 0.002 : 0.01);
  std::printf("Ablations (SF=%.4g)\n", config.scale_factor);
  Database db;
  RequireOk(PopulateTpch(&db, config), "PopulateTpch");

  OrderEnforcementAblation(&db);
  SortElisionAblation();
  MaterializationAblation(&db);
  IndexAblation(&db);
  FetchBatchAblation(&db);
  ForLoopAblation(&db);
  SimplificationPayoffAblation();
  return 0;
}
