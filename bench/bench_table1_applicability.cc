// Table 1 and §10.2: applicability of Aggify.
//
// Runs the real analyzer (cursor-loop finder + applicability checks +
// rewriter) over the bundled corpora whose loop-category proportions mirror
// RUBiS / RUBBoS / Adempiere, and the synthetic Azure census.
#include "bench_util.h"
#include "workloads/corpus.h"

using namespace aggify;
using namespace aggify::bench;

int main() {
  std::printf("Table 1: analysis of while loops in application corpora\n\n");
  TextTable table({"Workload", "Total # of while loops", "# of cursor loops",
                   "Aggify-able"});
  std::vector<std::pair<std::string, CorpusStats>> all_stats;
  for (const auto& corpus : ApplicabilityCorpora()) {
    CorpusStats stats = RequireOk(AnalyzeCorpus(corpus), corpus.name.c_str());
    char cursor_cell[64];
    std::snprintf(cursor_cell, sizeof(cursor_cell), "%d (%.1f%%)",
                  stats.cursor_loops,
                  100.0 * stats.cursor_loops /
                      std::max(1, stats.total_while_loops));
    table.AddRow({corpus.name, std::to_string(stats.total_while_loops),
                  cursor_cell, std::to_string(stats.aggifyable)});
    all_stats.emplace_back(corpus.name, std::move(stats));
  }
  table.Print();

  // Census bucketing: every skipped loop carries a stable diagnostic code,
  // so the "why not Aggify-able" breakdown is deterministic (no string
  // grepping) and must account for every non-rewritten cursor loop.
  std::printf("\nSkip diagnostics per corpus (deterministic code buckets):\n");
  TextTable buckets({"Workload", "Code", "Check", "Loops"});
  for (const auto& [name, stats] : all_stats) {
    int bucketed = 0;
    for (const auto& [code, count] : stats.skip_codes) {
      buckets.AddRow({name, DiagCodeName(code), DiagCodeSlug(code),
                      std::to_string(count)});
      bucketed += count;
    }
    if (stats.skip_codes.empty()) {
      buckets.AddRow({name, "-", "-", "0"});
    }
    if (stats.aggifyable + bucketed != stats.cursor_loops) {
      std::fprintf(stderr,
                   "%s: bucket accounting broken: %d aggifyable + %d "
                   "bucketed != %d cursor loops\n",
                   name.c_str(), stats.aggifyable, bucketed,
                   stats.cursor_loops);
      return 1;
    }
  }
  buckets.Print();

  // Eligibility ladder: of the Aggify-able loops, how many earned a Merge —
  // via the fold classifier's algebra, via homomorphism-calculus synthesis
  // (shuffle-sweep certified), or not at all (serial plan only). The three
  // buckets are mutually exclusive and must account for every rewrite.
  std::printf("\nMerge eligibility ladder (parallel-eligible widening):\n");
  TextTable ladder({"Workload", "Aggify-able", "Recognized fold",
                    "Merge synthesized", "Serial-only", "Parallel-eligible"});
  for (const auto& [name, stats] : all_stats) {
    int accounted = stats.recognized_fold + stats.merge_synthesized +
                    stats.serial_only;
    if (accounted != stats.aggifyable) {
      std::fprintf(stderr,
                   "%s: ladder accounting broken: %d fold + %d synthesized + "
                   "%d serial != %d aggifyable\n",
                   name.c_str(), stats.recognized_fold,
                   stats.merge_synthesized, stats.serial_only,
                   stats.aggifyable);
      return 1;
    }
    int eligible = stats.recognized_fold + stats.merge_synthesized;
    char eligible_cell[64];
    std::snprintf(eligible_cell, sizeof(eligible_cell), "%d (%.1f%%)",
                  eligible, 100.0 * eligible / std::max(1, stats.aggifyable));
    ladder.AddRow({name, std::to_string(stats.aggifyable),
                   std::to_string(stats.recognized_fold),
                   std::to_string(stats.merge_synthesized),
                   std::to_string(stats.serial_only), eligible_cell});
    std::printf(
        "{\"bench\": \"table1_applicability\", \"metric\": "
        "\"eligibility_ladder\", \"workload\": \"%s\", \"aggifyable\": %d, "
        "\"recognized_fold\": %d, \"merge_synthesized\": %d, "
        "\"serial_only\": %d}\n",
        name.c_str(), stats.aggifyable, stats.recognized_fold,
        stats.merge_synthesized, stats.serial_only);
  }
  ladder.Print();

  // Table-effect / early-exit recovery: loops the DML-body families (a:
  // INSERT...SELECT, b: set-oriented UPDATE) reclaimed and BREAK loops the
  // monotone-counter proof bounded. Recovered DML loops are serial-only by
  // construction (a persistent write has no Merge), so the ladder's
  // serial-only column must cover them; a bounded BREAK loop also runs
  // serial (the prefix bound suppresses parallel eligibility).
  std::printf("\nTable-effect & early-exit recovery (DML bodies, BREAK bounds):\n");
  TextTable recovery({"Workload", "DML INSERT recovered",
                      "DML UPDATE recovered", "Early-exit bounded"});
  for (const auto& [name, stats] : all_stats) {
    int dml = stats.dml_insert_recovered + stats.dml_update_recovered;
    if (dml + stats.early_exit_bounded > stats.serial_only) {
      std::fprintf(stderr,
                   "%s: recovery accounting broken: %d DML + %d bounded "
                   "loops exceed %d serial-only rewrites\n",
                   name.c_str(), dml, stats.early_exit_bounded,
                   stats.serial_only);
      return 1;
    }
    if (dml + stats.early_exit_bounded > stats.aggifyable) {
      std::fprintf(stderr, "%s: recovered more loops than are Aggify-able\n",
                   name.c_str());
      return 1;
    }
    recovery.AddRow({name, std::to_string(stats.dml_insert_recovered),
                     std::to_string(stats.dml_update_recovered),
                     std::to_string(stats.early_exit_bounded)});
    std::printf(
        "{\"bench\": \"table1_applicability\", \"metric\": "
        "\"table_effect_recovery\", \"workload\": \"%s\", "
        "\"dml_insert_recovered\": %d, \"dml_update_recovered\": %d, "
        "\"early_exit_bounded\": %d}\n",
        name.c_str(), stats.dml_insert_recovered, stats.dml_update_recovered,
        stats.early_exit_bounded);
  }
  recovery.Print();

  int64_t dbs = 5720;
  int64_t cursors = SimulateAzureCensus(dbs);
  std::printf(
      "\nSection 10.2 census analogue: %lld databases using UDFs declare "
      "%lld cursors inside UDFs\n(paper: 5,720 databases, >77,294 cursors; "
      "all are rewritable by Theorem 4.2).\n",
      static_cast<long long>(dbs), static_cast<long long>(cursors));
  return 0;
}
