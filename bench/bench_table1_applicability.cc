// Table 1 and §10.2: applicability of Aggify.
//
// Runs the real analyzer (cursor-loop finder + applicability checks +
// rewriter) over the bundled corpora whose loop-category proportions mirror
// RUBiS / RUBBoS / Adempiere, and the synthetic Azure census.
#include "bench_util.h"
#include "workloads/corpus.h"

using namespace aggify;
using namespace aggify::bench;

int main() {
  std::printf("Table 1: analysis of while loops in application corpora\n\n");
  TextTable table({"Workload", "Total # of while loops", "# of cursor loops",
                   "Aggify-able"});
  std::vector<std::pair<std::string, CorpusStats>> all_stats;
  for (const auto& corpus : ApplicabilityCorpora()) {
    CorpusStats stats = RequireOk(AnalyzeCorpus(corpus), corpus.name.c_str());
    char cursor_cell[64];
    std::snprintf(cursor_cell, sizeof(cursor_cell), "%d (%.1f%%)",
                  stats.cursor_loops,
                  100.0 * stats.cursor_loops /
                      std::max(1, stats.total_while_loops));
    table.AddRow({corpus.name, std::to_string(stats.total_while_loops),
                  cursor_cell, std::to_string(stats.aggifyable)});
    all_stats.emplace_back(corpus.name, std::move(stats));
  }
  table.Print();

  // Census bucketing: every skipped loop carries a stable diagnostic code,
  // so the "why not Aggify-able" breakdown is deterministic (no string
  // grepping) and must account for every non-rewritten cursor loop.
  std::printf("\nSkip diagnostics per corpus (deterministic code buckets):\n");
  TextTable buckets({"Workload", "Code", "Check", "Loops"});
  for (const auto& [name, stats] : all_stats) {
    int bucketed = 0;
    for (const auto& [code, count] : stats.skip_codes) {
      buckets.AddRow({name, DiagCodeName(code), DiagCodeSlug(code),
                      std::to_string(count)});
      bucketed += count;
    }
    if (stats.skip_codes.empty()) {
      buckets.AddRow({name, "-", "-", "0"});
    }
    if (stats.aggifyable + bucketed != stats.cursor_loops) {
      std::fprintf(stderr,
                   "%s: bucket accounting broken: %d aggifyable + %d "
                   "bucketed != %d cursor loops\n",
                   name.c_str(), stats.aggifyable, bucketed,
                   stats.cursor_loops);
      return 1;
    }
  }
  buckets.Print();

  int64_t dbs = 5720;
  int64_t cursors = SimulateAzureCensus(dbs);
  std::printf(
      "\nSection 10.2 census analogue: %lld databases using UDFs declare "
      "%lld cursors inside UDFs\n(paper: 5,720 databases, >77,294 cursors; "
      "all are rewritable by Theorem 4.2).\n",
      static_cast<long long>(dbs), static_cast<long long>(cursors));
  return 0;
}
