// Table 1 and §10.2: applicability of Aggify.
//
// Runs the real analyzer (cursor-loop finder + applicability checks +
// rewriter) over the bundled corpora whose loop-category proportions mirror
// RUBiS / RUBBoS / Adempiere, and the synthetic Azure census.
#include "bench_util.h"
#include "workloads/corpus.h"

using namespace aggify;
using namespace aggify::bench;

int main() {
  std::printf("Table 1: analysis of while loops in application corpora\n\n");
  TextTable table({"Workload", "Total # of while loops", "# of cursor loops",
                   "Aggify-able"});
  for (const auto& corpus : ApplicabilityCorpora()) {
    CorpusStats stats = RequireOk(AnalyzeCorpus(corpus), corpus.name.c_str());
    char cursor_cell[64];
    std::snprintf(cursor_cell, sizeof(cursor_cell), "%d (%.1f%%)",
                  stats.cursor_loops,
                  100.0 * stats.cursor_loops /
                      std::max(1, stats.total_while_loops));
    table.AddRow({corpus.name, std::to_string(stats.total_while_loops),
                  cursor_cell, std::to_string(stats.aggifyable)});
  }
  table.Print();

  int64_t dbs = 5720;
  int64_t cursors = SimulateAzureCensus(dbs);
  std::printf(
      "\nSection 10.2 census analogue: %lld databases using UDFs declare "
      "%lld cursors inside UDFs\n(paper: 5,720 databases, >77,294 cursors; "
      "all are rewritable by Theorem 4.2).\n",
      static_cast<long long>(dbs), static_cast<long long>(cursors));
  return 0;
}
