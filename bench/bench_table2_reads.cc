// Table 2: logical reads incurred by the TPC-H cursor workload under
// Original / Aggify / Aggify+.
//
// Paper shape to reproduce: Aggify slashes total logical reads (cursor
// worktable materialization disappears); Aggify+ sometimes *increases*
// logical reads relative to Aggify while still improving execution time —
// the set-oriented plan trades reads for far less per-call overhead.
#include "bench_util.h"
#include "tpch/tpch_gen.h"
#include "workloads/tpch_adapter.h"

using namespace aggify;
using namespace aggify::bench;

int main() {
  TpchConfig config;
  config.scale_factor = GetScaleFactor(QuickMode() ? 0.002 : 0.01);
  std::printf("Table 2: logical reads (base pages + worktable pages), "
              "SF=%.4g\n\n",
              config.scale_factor);

  Database db;
  RequireOk(PopulateTpch(&db, config), "PopulateTpch");

  TextTable table({"Qry", "Original", "Aggify", "Aggify+",
                   "Savings (Aggify)", "Worktable pages (Orig)"});
  for (const auto& q : TpchCursorQueries()) {
    WorkloadQuery w = ToWorkloadQuery(q);
    RunMetrics original =
        RequireOk(RunWorkloadQuery(&db, w, RunMode::kOriginal), "original");
    RunMetrics aggify =
        RequireOk(RunWorkloadQuery(&db, w, RunMode::kAggify), "aggify");
    RunMetrics plus =
        RequireOk(RunWorkloadQuery(&db, w, RunMode::kAggifyPlus), "aggify+");
    int64_t savings = original.TotalLogicalReads() - aggify.TotalLogicalReads();
    table.AddRow({q.id, FormatCount(original.TotalLogicalReads()),
                  FormatCount(aggify.TotalLogicalReads()),
                  FormatCount(plus.TotalLogicalReads()), FormatCount(savings),
                  FormatCount(original.worktable_pages_written)});
  }
  table.Print();
  return 0;
}
